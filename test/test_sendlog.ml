(* Tests for the SeNDlog security layer: principals, the says
   authentication modes, and program compilation. *)

let rng () = Crypto.Rng.create ~seed:123

(* --- principals -------------------------------------------------------- *)

let test_directory () =
  let d = Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384 [ "a"; "b"; "c" ] in
  Alcotest.(check (list string)) "names" [ "a"; "b"; "c" ] (Sendlog.Principal.names d);
  Alcotest.(check bool) "find" true (Sendlog.Principal.find d "b" <> None);
  Alcotest.(check bool) "missing" true (Sendlog.Principal.find d "z" = None);
  Alcotest.(check int) "default level" 1 (Sendlog.Principal.level_of d "a");
  Alcotest.(check int) "unknown level" 0 (Sendlog.Principal.level_of d "z")

let test_directory_levels () =
  let d =
    Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384
      ~level_of_name:(fun n -> if n = "core" then 3 else 1)
      [ "core"; "edge" ]
  in
  Alcotest.(check int) "core level" 3 (Sendlog.Principal.level_of d "core");
  Alcotest.(check int) "edge level" 1 (Sendlog.Principal.level_of d "edge")

let test_distinct_keys () =
  let d = Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384 [ "a"; "b" ] in
  let pa = Sendlog.Principal.find_exn d "a" and pb = Sendlog.Principal.find_exn d "b" in
  Alcotest.(check bool) "different RSA keys" false
    (Crypto.Rsa.public_to_string (Sendlog.Principal.public_key pa)
    = Crypto.Rsa.public_to_string (Sendlog.Principal.public_key pb));
  Alcotest.(check bool) "different hmac keys" false (pa.hmac_key = pb.hmac_key)

(* --- auth modes --------------------------------------------------------- *)

let check_mode mode expected_verdict_on_ok =
  let d = Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384 [ "a"; "b" ] in
  let sender = Sendlog.Principal.find_exn d "a" in
  let bytes = "payload-bytes" in
  let auth = Sendlog.Auth.make_auth mode sender bytes in
  let v = Sendlog.Auth.verify mode d auth bytes in
  Alcotest.(check bool)
    (Sendlog.Auth.mode_to_string mode ^ " verdict")
    true (v = expected_verdict_on_ok)

let test_auth_none () = check_mode Sendlog.Auth.Auth_none Sendlog.Auth.Unsigned
let test_auth_cleartext () = check_mode Sendlog.Auth.Auth_cleartext (Sendlog.Auth.Verified "a")
let test_auth_hmac () = check_mode Sendlog.Auth.Auth_hmac (Sendlog.Auth.Verified "a")
let test_auth_rsa () = check_mode Sendlog.Auth.Auth_rsa (Sendlog.Auth.Verified "a")

let test_auth_tamper_detected () =
  let d = Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384 [ "a" ] in
  let sender = Sendlog.Principal.find_exn d "a" in
  List.iter
    (fun mode ->
      let auth = Sendlog.Auth.make_auth mode sender "original" in
      match Sendlog.Auth.verify mode d auth "tampered" with
      | Sendlog.Auth.Forged _ -> ()
      | _ -> Alcotest.fail (Sendlog.Auth.mode_to_string mode ^ " accepted tampered bytes"))
    [ Sendlog.Auth.Auth_hmac; Sendlog.Auth.Auth_rsa ]

let test_auth_unknown_principal () =
  let d = Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384 [ "a" ] in
  let outsider = Sendlog.Principal.create (rng ()) ~name:"mallory" ~rsa_bits:384 () in
  let auth = Sendlog.Auth.make_auth Sendlog.Auth.Auth_rsa outsider "bytes" in
  (match Sendlog.Auth.verify Sendlog.Auth.Auth_rsa d auth "bytes" with
  | Sendlog.Auth.Forged _ -> ()
  | _ -> Alcotest.fail "unknown principal accepted")

let test_auth_impersonation_detected () =
  (* mallory registers her own key but claims to be alice *)
  let d = Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384 [ "alice"; "mallory" ] in
  let mallory = Sendlog.Principal.find_exn d "mallory" in
  let bytes = "spoofed" in
  let forged =
    Net.Wire.A_signature
      { principal = "alice"; signature = Crypto.Rsa.sign mallory.keypair.private_ bytes }
  in
  (match Sendlog.Auth.verify Sendlog.Auth.Auth_rsa d forged bytes with
  | Sendlog.Auth.Forged _ -> ()
  | _ -> Alcotest.fail "impersonation accepted");
  (* cleartext mode, by design, accepts the claim - that is the benign
     world trade-off the paper describes *)
  (match Sendlog.Auth.verify Sendlog.Auth.Auth_cleartext d (Net.Wire.A_principal "alice") bytes with
  | Sendlog.Auth.Verified "alice" -> ()
  | _ -> Alcotest.fail "cleartext should accept at face value")

let test_provenance_node_signing () =
  let d = Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384 [ "a" ] in
  let p = Sendlog.Principal.find_exn d "a" in
  (match Sendlog.Auth.sign_provenance_node Sendlog.Auth.Auth_rsa p ~node_repr:"n" with
  | Some signature ->
    Alcotest.(check bool) "verifies" true
      (Sendlog.Auth.verify_provenance_node Sendlog.Auth.Auth_rsa d ~principal:"a"
         ~node_repr:"n" ~signature);
    Alcotest.(check bool) "wrong repr" false
      (Sendlog.Auth.verify_provenance_node Sendlog.Auth.Auth_rsa d ~principal:"a"
         ~node_repr:"m" ~signature)
  | None -> Alcotest.fail "rsa mode must sign");
  Alcotest.(check bool) "cleartext does not sign" true
    (Sendlog.Auth.sign_provenance_node Sendlog.Auth.Auth_cleartext p ~node_repr:"n" = None)

(* --- signature cache -------------------------------------------------------- *)

let cache_counter name = Obs.Metrics.value (Obs.Metrics.counter Obs.Metrics.default name)

let test_sign_cache_hit_identical () =
  (* Signing the same payload twice: one miss then one hit, and the
     cached signature is byte-identical both to the cold one and to a
     naive (non-fastpath) signing. *)
  Obs.Metrics.reset Obs.Metrics.default;
  let d = Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384 [ "a" ] in
  let sender = Sendlog.Principal.find_exn d "a" in
  let bytes = "payload-to-cache" in
  let hits0 = cache_counter "crypto.sign_cache_hits" in
  let misses0 = cache_counter "crypto.sign_cache_misses" in
  let sig_of = function
    | Net.Wire.A_signature { signature; _ } -> signature
    | _ -> Alcotest.fail "expected an RSA signature"
  in
  let cold = sig_of (Sendlog.Auth.make_auth Sendlog.Auth.Auth_rsa sender bytes) in
  Alcotest.(check int) "one miss" (misses0 + 1) (cache_counter "crypto.sign_cache_misses");
  let cached = sig_of (Sendlog.Auth.make_auth Sendlog.Auth.Auth_rsa sender bytes) in
  Alcotest.(check int) "one hit" (hits0 + 1) (cache_counter "crypto.sign_cache_hits");
  Alcotest.(check string) "cache hit byte-identical to cold" cold cached;
  Alcotest.(check string) "identical to naive signing" cold
    (Crypto.Rsa.sign ~fastpath:false sender.keypair.private_ bytes);
  (* clearing the cache forces a fresh signing, still identical *)
  Sendlog.Principal.clear_sign_caches d;
  let recomputed = sig_of (Sendlog.Auth.make_auth Sendlog.Auth.Auth_rsa sender bytes) in
  Alcotest.(check int) "miss after clear" (misses0 + 2)
    (cache_counter "crypto.sign_cache_misses");
  Alcotest.(check string) "recomputed identical" cold recomputed

let test_sign_cache_bypassed_without_fastpath () =
  Obs.Metrics.reset Obs.Metrics.default;
  let d = Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384 [ "a" ] in
  let sender = Sendlog.Principal.find_exn d "a" in
  for _ = 1 to 3 do
    ignore (Sendlog.Auth.make_auth ~fastpath:false Sendlog.Auth.Auth_rsa sender "b")
  done;
  Alcotest.(check int) "no hits" 0 (cache_counter "crypto.sign_cache_hits");
  Alcotest.(check int) "no misses" 0 (cache_counter "crypto.sign_cache_misses")

(* End-to-end characterization of the sender sign cache.  The signed
   payload is (src, dst, tuple) — no seq, no provenance block — so any
   re-derivation that re-ships the same tuple to the same destination
   recurs byte-identically.  On the RSA fastpath the runtime signs
   *before* consulting the sent cache, precisely so those re-ships
   resolve as digest-cache hits instead of being deduped away upstream
   (the pre-fix steady state read 0 hits on every workload).  This
   fixture drives the path explicitly: node n1 derives out(@n2, x)
   once from a local base (provenance <n1>) and once from a relayed
   body (provenance involving n0), forcing two signatures over
   identical bytes. *)
let sign_cache_fixture_program =
  Ndlog.Parser.parse_program_exn
    {|
x1 out(@D, X) :- local(@S, D, X).
x2 out(@D, X) :- relay(@S, D, X).
x3 relay(@Z, D, X) :- seed(@C, Z, D, X).
|}

let run_sign_cache_fixture cfg =
  Obs.Metrics.reset Obs.Metrics.default;
  let topo = Net.Topology.line ~n:3 () in
  let directory =
    Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384 topo.Net.Topology.nodes
  in
  let t =
    Core.Runtime.create ~directory ~rng:(Crypto.Rng.create ~seed:5) ~cfg ~topo
      ~program:sign_cache_fixture_program ()
  in
  let v s = Engine.Value.V_str s in
  (* first derivation of out(n2,x): local base at n1, provenance <n1> *)
  Core.Runtime.install_fact t ~at:"n1"
    (Engine.Tuple.make "local" [ v "n1"; v "n2"; v "x" ]);
  ignore (Core.Runtime.run t);
  let hits_before = cache_counter "crypto.sign_cache_hits" in
  (* second derivation via the relay: same head tuple, same destination,
     different provenance block *)
  Core.Runtime.install_fact t ~at:"n0"
    (Engine.Tuple.make "seed" [ v "n0"; v "n1"; v "n2"; v "x" ]);
  ignore (Core.Runtime.run t);
  let st = Core.Runtime.stats t in
  Core.Runtime.shutdown t;
  (hits_before, cache_counter "crypto.sign_cache_hits", st)

let test_sign_cache_live_path () =
  let cfg = { Core.Config.sendlog_prov with rsa_bits = 384 } in
  let hits_before, hits_after, st = run_sign_cache_fixture cfg in
  Alcotest.(check int) "no hit from the first emission" 0 hits_before;
  Alcotest.(check bool) "re-shipment with new provenance hits the cache" true
    (hits_after > hits_before);
  Alcotest.(check int) "cached signatures verify at the receiver" 0
    st.Net.Stats.dropped_forged

let test_sign_cache_alive_without_provenance () =
  (* Same scenario without shipped provenance: the sent cache will drop
     the re-emission, but signing now runs first, so the re-derived
     identical payload still registers as a cache hit (the steady state
     the crypto ablation asserts on). *)
  let cfg = { Core.Config.sendlog with rsa_bits = 384 } in
  let _, hits_after, st = run_sign_cache_fixture cfg in
  Alcotest.(check bool) "re-derivation hits the sign cache" true (hits_after > 0);
  Alcotest.(check int) "nothing forged" 0 st.Net.Stats.dropped_forged

(* --- batched verification --------------------------------------------- *)

let verdict_str = function
  | Sendlog.Auth.Verified p -> "verified:" ^ p
  | Sendlog.Auth.Unsigned -> "unsigned"
  | Sendlog.Auth.Forged why -> "forged:" ^ why

let signed_item ?(fastpath = true) sender payload =
  let slice = Net.Arena.of_string payload in
  (Sendlog.Auth.make_auth_slice ~fastpath Sendlog.Auth.Auth_rsa sender slice, slice)

let test_verify_batch_size_one () =
  Obs.Metrics.reset Obs.Metrics.default;
  let d = Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384 [ "a"; "b" ] in
  let sender = Sendlog.Principal.find_exn d "a" in
  let verdicts =
    Sendlog.Auth.verify_batch Sendlog.Auth.Auth_rsa d [| signed_item sender "m0" |]
  in
  Alcotest.(check (list string)) "single verdict" [ "verified:a" ]
    (Array.to_list (Array.map verdict_str verdicts));
  Alcotest.(check int) "one batch counted" 1 (cache_counter "crypto.verify_batches");
  Alcotest.(check int) "one item counted" 1 (cache_counter "crypto.verify_batch_size")

let test_verify_batch_empty_uncounted () =
  Obs.Metrics.reset Obs.Metrics.default;
  let d = Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384 [ "a" ] in
  Alcotest.(check int) "no verdicts" 0
    (Array.length (Sendlog.Auth.verify_batch Sendlog.Auth.Auth_rsa d [||]));
  Alcotest.(check int) "no batch counted" 0 (cache_counter "crypto.verify_batches");
  Alcotest.(check int) "no items counted" 0 (cache_counter "crypto.verify_batch_size")

let test_verify_batch_pinpoints_forgery () =
  (* a forged message in the middle of a batch: only its slot comes
     back Forged, the neighbours still verify *)
  let d = Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384 [ "a"; "b" ] in
  let sender = Sendlog.Principal.find_exn d "a" in
  let forged =
    (* a's genuine signature shipped with different bytes *)
    let auth, _ = signed_item sender "m1" in
    (auth, Net.Arena.of_string "m1-tampered")
  in
  let verdicts =
    Sendlog.Auth.verify_batch Sendlog.Auth.Auth_rsa d
      [| signed_item sender "m0"; forged; signed_item sender "m2" |]
  in
  Alcotest.(check (list string)) "middle slot pinpointed"
    [ "verified:a"; "forged:bad signature from a"; "verified:a" ]
    (Array.to_list (Array.map verdict_str verdicts))

let test_verify_batch_unknown_principal () =
  let d = Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384 [ "a"; "b" ] in
  let stranger =
    Sendlog.Principal.create (Crypto.Rng.create ~seed:77) ~name:"mallory" ~rsa_bits:384 ()
  in
  let verdicts =
    Sendlog.Auth.verify_batch Sendlog.Auth.Auth_rsa d [| signed_item stranger "m0" |]
  in
  Alcotest.(check string) "unknown principal named" "forged:unknown principal mallory"
    (verdict_str verdicts.(0))

let test_verify_batch_without_fastpath () =
  (* the naive modular-exponentiation path must agree with the
     fastpath verdict for both honest and tampered items *)
  let d = Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384 [ "a" ] in
  let sender = Sendlog.Principal.find_exn d "a" in
  let tampered =
    let auth, _ = signed_item ~fastpath:false sender "t" in
    (auth, Net.Arena.of_string "t'")
  in
  let verdicts =
    Sendlog.Auth.verify_batch ~fastpath:false Sendlog.Auth.Auth_rsa d
      [| signed_item ~fastpath:false sender "m0"; tampered |]
  in
  Alcotest.(check (list string)) "same verdicts without fastpath"
    [ "verified:a"; "forged:bad signature from a" ]
    (Array.to_list (Array.map verdict_str verdicts))

let test_verify_batch_fanout_slots () =
  (* slab layout: item j's verdict is slot [j mod chunk] of future
     [j / chunk], a forged item keeps its exact position *)
  let d = Sendlog.Principal.directory_for (rng ()) ~rsa_bits:384 [ "a" ] in
  let sender = Sendlog.Principal.find_exn d "a" in
  let items =
    Array.init 7 (fun j ->
        if j = 5 then
          let auth, _ = signed_item sender "payload-5" in
          (auth, Net.Arena.of_string "payload-5-tampered")
        else signed_item sender (Printf.sprintf "payload-%d" j))
  in
  let pool = Par.Pool.create ~jobs:2 in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      let futures =
        Sendlog.Auth.verify_batch_fanout ~chunk:3 pool Sendlog.Auth.Auth_rsa d items
      in
      Alcotest.(check int) "ceil(7/3) slabs" 3 (Array.length futures);
      let verdict j = (Par.Pool.await futures.(j / 3)).(j mod 3) in
      for j = 0 to 6 do
        let expect =
          if j = 5 then "forged:bad signature from a" else "verified:a"
        in
        Alcotest.(check string) (Printf.sprintf "slot %d" j) expect
          (verdict_str (verdict j))
      done;
      Alcotest.check_raises "chunk < 1 rejected"
        (Invalid_argument "Auth.verify_batch_fanout: chunk must be >= 1") (fun () ->
          ignore (Sendlog.Auth.verify_batch_fanout ~chunk:0 pool Sendlog.Auth.Auth_rsa d items)))

(* --- compilation ----------------------------------------------------------- *)

let test_compile_ndlog_localizes () =
  let c = Sendlog.Compile.compile (Ndlog.Programs.reachable ()) in
  Alcotest.(check bool) "not sendlog" false c.c_sendlog;
  Alcotest.(check int) "localized rule count" 3 (List.length c.c_rules);
  Alcotest.(check bool) "all localized" true
    (List.for_all Ndlog.Localize.is_localized c.c_rules)

let test_compile_sendlog_detected () =
  let c = Sendlog.Compile.compile (Ndlog.Programs.sendlog_reachable ()) in
  Alcotest.(check bool) "sendlog" true c.c_sendlog;
  Alcotest.(check (list string)) "imported under says" [ "linkD"; "reachable" ]
    c.c_comm.imported;
  Alcotest.(check (list string)) "exported" [ "linkD"; "reachable" ] c.c_comm.exported

let test_compile_rejects_bad_program () =
  let bad = Ndlog.Parser.parse_program_exn "r p(@S, D) :- q(@S)." in
  Alcotest.(check bool) "unsafe rejected" true
    (match Sendlog.Compile.compile bad with
    | exception Sendlog.Compile.Compile_error _ -> true
    | _ -> false)

let test_compile_rejects_unroutable () =
  let bad = Ndlog.Parser.parse_program_exn "r t(@S) :- a(@S), b(@Z, S)." in
  Alcotest.(check bool) "unroutable rejected" true
    (match Sendlog.Compile.compile bad with
    | exception Sendlog.Compile.Compile_error _ -> true
    | _ -> false)

let test_compile_best_path_programs () =
  (* both Best-Path variants compile cleanly *)
  let c1 = Sendlog.Compile.compile (Ndlog.Programs.best_path ()) in
  Alcotest.(check bool) "ndlog best path localized" true
    (List.for_all Ndlog.Localize.is_localized c1.c_rules);
  let c2 = Sendlog.Compile.compile (Ndlog.Programs.sendlog_best_path ()) in
  Alcotest.(check bool) "sendlog variant detected" true c2.c_sendlog

let suite : unit Alcotest.test_case list =
  [ Alcotest.test_case "directory" `Quick test_directory;
    Alcotest.test_case "directory levels" `Quick test_directory_levels;
    Alcotest.test_case "distinct keys" `Quick test_distinct_keys;
    Alcotest.test_case "auth none" `Quick test_auth_none;
    Alcotest.test_case "auth cleartext" `Quick test_auth_cleartext;
    Alcotest.test_case "auth hmac" `Quick test_auth_hmac;
    Alcotest.test_case "auth rsa" `Quick test_auth_rsa;
    Alcotest.test_case "tamper detection" `Quick test_auth_tamper_detected;
    Alcotest.test_case "unknown principal" `Quick test_auth_unknown_principal;
    Alcotest.test_case "impersonation" `Quick test_auth_impersonation_detected;
    Alcotest.test_case "provenance node signatures" `Quick test_provenance_node_signing;
    Alcotest.test_case "sign cache hit identical" `Quick test_sign_cache_hit_identical;
    Alcotest.test_case "sign cache off with naive path" `Quick
      test_sign_cache_bypassed_without_fastpath;
    Alcotest.test_case "sign cache live path (prov re-shipment)" `Quick
      test_sign_cache_live_path;
    Alcotest.test_case "sign cache alive without provenance" `Quick
      test_sign_cache_alive_without_provenance;
    Alcotest.test_case "verify batch: size one" `Quick test_verify_batch_size_one;
    Alcotest.test_case "verify batch: empty uncounted" `Quick
      test_verify_batch_empty_uncounted;
    Alcotest.test_case "verify batch: forgery pinpointed" `Quick
      test_verify_batch_pinpoints_forgery;
    Alcotest.test_case "verify batch: unknown principal" `Quick
      test_verify_batch_unknown_principal;
    Alcotest.test_case "verify batch: fastpath off" `Quick
      test_verify_batch_without_fastpath;
    Alcotest.test_case "verify batch: fanout slab slots" `Quick
      test_verify_batch_fanout_slots;
    Alcotest.test_case "compile localizes NDlog" `Quick test_compile_ndlog_localizes;
    Alcotest.test_case "compile detects SeNDlog" `Quick test_compile_sendlog_detected;
    Alcotest.test_case "compile rejects unsafe" `Quick test_compile_rejects_bad_program;
    Alcotest.test_case "compile rejects unroutable" `Quick test_compile_rejects_unroutable;
    Alcotest.test_case "compile best-path variants" `Quick test_compile_best_path_programs ]
