(* Test entry point: one alcotest suite per library/module group. *)
let () =
  Alcotest.run "psn"
    [ ("bignum", Test_bignum.suite);
      ("crypto", Test_crypto.suite);
      ("bdd", Test_bdd.suite);
      ("bloom", Test_bloom.suite);
      ("ndlog", Test_ndlog.suite);
      ("engine", Test_engine.suite);
      ("net", Test_net.suite);
      ("provenance", Test_provenance.suite);
      ("sendlog", Test_sendlog.suite);
      ("core", Test_core.suite);
      ("store", Test_store.suite);
      ("par", Test_par.suite);
      ("shard", Test_shard.suite);
      ("obs", Test_obs.suite) ]
