(* Tests for the Datalog engine: values, tuples, the store with
   replace policies and soft state, expression evaluation, and the
   semi-naive fixpoint (checked against reference algorithms). *)

open Engine

let parse = Ndlog.Parser.parse_program_exn

let v_str s = Value.V_str s
let v_int i = Value.V_int i

let results db rel = Db.tuples_of db rel |> List.map Tuple.to_string |> List.sort compare

let run_src src = Eval.run_single_site (parse src)

(* --- values ------------------------------------------------------------ *)

let test_value_compare_total () =
  let vs =
    [ v_int 1; v_int 2; Value.V_float 1.5; Value.V_bool true; v_str "a";
      Value.V_list [ v_int 1 ]; Value.V_list [] ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check int) "antisymmetric" (Value.compare a b) (-Value.compare b a))
        vs)
    vs;
  (* numeric cross-type comparison *)
  Alcotest.(check int) "int vs float equal" 0 (Value.compare (v_int 2) (Value.V_float 2.0))

let test_value_hash_consistent () =
  let a = Value.V_list [ v_int 1; v_str "x" ] in
  let b = Value.V_list [ v_int 1; v_str "x" ] in
  Alcotest.(check bool) "equal implies same hash" true
    ((not (Value.equal a b)) || Value.hash a = Value.hash b)

let test_value_to_string () =
  Alcotest.(check string) "list" "[a,1,true]"
    (Value.to_string (Value.V_list [ v_str "a"; v_int 1; Value.V_bool true ]))

(* --- tuples -------------------------------------------------------------- *)

let test_tuple_basics () =
  let t = Tuple.make "p" [ v_str "a"; v_int 3 ] in
  Alcotest.(check int) "arity" 2 (Tuple.arity t);
  Alcotest.(check string) "to_string" "p(a, 3)" (Tuple.to_string t);
  Alcotest.(check bool) "equal" true (Tuple.equal t (Tuple.make "p" [ v_str "a"; v_int 3 ]));
  Alcotest.(check bool) "differs by rel" false
    (Tuple.equal t (Tuple.make "q" [ v_str "a"; v_int 3 ]));
  Alcotest.(check (list string)) "key projection" [ "a" ]
    (List.map Value.to_string (Tuple.key_of t [ 0 ]))

(* --- db policies ------------------------------------------------------------ *)

let test_db_set_semantics () =
  let db = Db.create () in
  let t = Tuple.make "p" [ v_int 1 ] in
  Alcotest.(check bool) "added" true (Db.insert db ~now:0.0 t = Db.Added);
  Alcotest.(check bool) "refreshed" true (Db.insert db ~now:1.0 t = Db.Refreshed);
  Alcotest.(check int) "cardinal" 1 (Db.cardinal db "p")

let test_db_replace_min () =
  let db = Db.create () in
  Db.set_policy db "best" (Db.Replace { key = [ 0 ]; prefer = Db.P_min 1 });
  let mk k c = Tuple.make "best" [ v_str k; v_int c ] in
  Alcotest.(check bool) "first added" true (Db.insert db ~now:0.0 (mk "a" 10) = Db.Added);
  (match Db.insert db ~now:0.0 (mk "a" 5) with
  | Db.Replaced old -> Alcotest.(check string) "old returned" "best(a, 10)" (Tuple.to_string old)
  | _ -> Alcotest.fail "expected replacement");
  Alcotest.(check bool) "worse rejected" true (Db.insert db ~now:0.0 (mk "a" 7) = Db.Rejected);
  Alcotest.(check bool) "other key independent" true
    (Db.insert db ~now:0.0 (mk "b" 99) = Db.Added);
  Alcotest.(check (list string)) "final" [ "best(a, 5)"; "best(b, 99)" ] (results db "best")

let test_db_replace_last () =
  let db = Db.create () in
  Db.set_policy db "cnt" (Db.Replace { key = [ 0 ]; prefer = Db.P_last });
  let mk k c = Tuple.make "cnt" [ v_str k; v_int c ] in
  ignore (Db.insert db ~now:0.0 (mk "a" 1));
  ignore (Db.insert db ~now:0.0 (mk "a" 2));
  Alcotest.(check (list string)) "last wins" [ "cnt(a, 2)" ] (results db "cnt")

let test_db_ttl_eviction () =
  let db = Db.create () in
  Db.set_ttl db "soft" 5.0;
  let t1 = Tuple.make "soft" [ v_int 1 ] and t2 = Tuple.make "soft" [ v_int 2 ] in
  ignore (Db.insert db ~now:0.0 t1);
  ignore (Db.insert db ~now:3.0 t2);
  Alcotest.(check (list string)) "nothing at t=4" []
    (List.map Tuple.to_string (Db.evict_expired db ~now:4.0));
  let evicted = Db.evict_expired db ~now:6.0 in
  Alcotest.(check (list string)) "t1 evicted" [ "soft(1)" ] (List.map Tuple.to_string evicted);
  Alcotest.(check int) "t2 alive" 1 (Db.cardinal db "soft");
  (* refresh extends the lifetime *)
  ignore (Db.insert db ~now:7.0 t2);
  Alcotest.(check int) "no eviction after refresh" 0
    (List.length (Db.evict_expired db ~now:9.0))

let test_db_set_ttl_semantics () =
  let db = Db.create () in
  let t1 = Tuple.make "soft" [ v_int 1 ] in
  ignore (Db.insert db ~now:0.0 t1);
  (* default: a TTL set after insertion does NOT apply to live tuples *)
  Db.set_ttl db "soft" 5.0;
  Alcotest.(check int) "pre-existing tuple immortal" 0
    (List.length (Db.evict_expired db ~now:100.0));
  (* future inserts get the TTL *)
  let t2 = Tuple.make "soft" [ v_int 2 ] in
  ignore (Db.insert db ~now:100.0 t2);
  Alcotest.(check (list string)) "new tuple expires" [ "soft(2)" ]
    (List.map Tuple.to_string (Db.evict_expired db ~now:106.0));
  (* retroactive: live tuples get inserted_at + seconds, possibly past *)
  Db.set_ttl ~retroactive:true db "soft" 5.0;
  Alcotest.(check (list string)) "retroactive expiry collected" [ "soft(1)" ]
    (List.map Tuple.to_string (Db.evict_expired db ~now:107.0))

let test_db_refresh_on_rederive () =
  let db = Db.create () in
  Db.set_ttl db "soft" 5.0;
  let t = Tuple.make "soft" [ v_int 1 ] in
  (* default (P2 semantics): re-derivation extends the lifetime *)
  ignore (Db.insert db ~now:0.0 t);
  ignore (Db.insert db ~now:4.0 t);
  Alcotest.(check int) "refreshed past original expiry" 0
    (List.length (Db.evict_expired db ~now:6.0));
  Alcotest.(check (list string)) "expires from the refresh" [ "soft(1)" ]
    (List.map Tuple.to_string (Db.evict_expired db ~now:9.5));
  (* explicit opt-out: the first insertion's expiry sticks *)
  Db.set_refresh_on_rederive db "soft" false;
  ignore (Db.insert db ~now:10.0 t);
  ignore (Db.insert db ~now:14.0 t);
  Alcotest.(check (list string)) "re-derivation did not extend" [ "soft(1)" ]
    (List.map Tuple.to_string (Db.evict_expired db ~now:15.5))

let test_db_asserters () =
  let db = Db.create () in
  let t = Tuple.make "p" [ v_int 1 ] in
  Alcotest.(check bool) "added" true (Db.insert db ~now:0.0 ~asserted_by:(v_str "alice") t = Db.Added);
  Alcotest.(check bool) "new asserter" true
    (Db.insert db ~now:0.0 ~asserted_by:(v_str "bob") t = Db.New_asserter);
  Alcotest.(check bool) "repeat asserter" true
    (Db.insert db ~now:0.0 ~asserted_by:(v_str "bob") t = Db.Refreshed);
  Alcotest.(check int) "two asserters" 2 (List.length (Db.asserters_of db t))

let test_db_remove () =
  let db = Db.create () in
  Db.set_policy db "k" (Db.Replace { key = [ 0 ]; prefer = Db.P_last });
  let t = Tuple.make "k" [ v_int 1; v_int 2 ] in
  ignore (Db.insert db ~now:0.0 t);
  Db.remove db t;
  Alcotest.(check int) "gone" 0 (Db.cardinal db "k");
  (* the by-key index is cleaned: re-insert works *)
  Alcotest.(check bool) "reinsert" true (Db.insert db ~now:0.0 t = Db.Added)

(* --- expression evaluation ---------------------------------------------------- *)

let eval_term bindings src =
  (* parse a term by wrapping it in a rule *)
  let p = parse (Printf.sprintf "r p(@S, X) :- q(@S), X := %s." src) in
  match Ndlog.Ast.rules p with
  | [ { rule_body = [ _; Ndlog.Ast.L_assign (_, term) ]; _ } ] ->
    Expr_eval.eval bindings term
  | _ -> Alcotest.fail "bad term wrapper"

let test_expr_arithmetic () =
  let b = Bindings.of_list [ ("A", v_int 7); ("B", v_int 2) ] in
  Alcotest.(check string) "add" "9" (Value.to_string (eval_term b "A + B"));
  Alcotest.(check string) "precedence" "11" (Value.to_string (eval_term b "A + B * 2"));
  Alcotest.(check string) "div" "3" (Value.to_string (eval_term b "A / B"));
  Alcotest.(check string) "mod" "1" (Value.to_string (eval_term b "A % B"));
  Alcotest.(check bool) "div by zero" true
    (match eval_term b "A / 0" with
    | exception Expr_eval.Eval_error _ -> true
    | _ -> false)

let test_expr_builtins () =
  let b = Bindings.of_list [ ("S", v_str "a"); ("D", v_str "b") ] in
  let path = eval_term b "f_init(S, D)" in
  Alcotest.(check string) "f_init" "[a,b]" (Value.to_string path);
  let b2 = Bindings.of_list [ ("P", path); ("X", v_str "z") ] in
  Alcotest.(check string) "f_concat" "[z,a,b]" (Value.to_string (eval_term b2 "f_concat(X, P)"));
  Alcotest.(check string) "f_append" "[a,b,z]" (Value.to_string (eval_term b2 "f_append(P, X)"));
  Alcotest.(check string) "f_member yes" "true" (Value.to_string (eval_term b2 "f_member(P, \"a\")"));
  Alcotest.(check string) "f_member no" "false" (Value.to_string (eval_term b2 "f_member(P, X)"));
  Alcotest.(check string) "f_size" "2" (Value.to_string (eval_term b2 "f_size(P)"));
  Alcotest.(check string) "f_first" "a" (Value.to_string (eval_term b2 "f_first(P)"));
  Alcotest.(check string) "f_last" "b" (Value.to_string (eval_term b2 "f_last(P)"));
  Alcotest.(check string) "f_min" "1" (Value.to_string (eval_term Bindings.empty "f_min(1, 2)"));
  Alcotest.(check string) "f_max" "2" (Value.to_string (eval_term Bindings.empty "f_max(1, 2)"))

let test_match_args () =
  let t = Tuple.make "p" [ v_str "a"; v_int 3 ] in
  let pattern = [ Ndlog.Ast.T_var "X"; Ndlog.Ast.T_var "Y" ] in
  (match Expr_eval.match_args Bindings.empty pattern t with
  | Some b ->
    Alcotest.(check bool) "X bound" true (Bindings.find "X" b = Some (v_str "a"))
  | None -> Alcotest.fail "match expected");
  (* repeated variable must unify *)
  let t2 = Tuple.make "p" [ v_str "a"; v_str "a" ] in
  let rep = [ Ndlog.Ast.T_var "X"; Ndlog.Ast.T_var "X" ] in
  Alcotest.(check bool) "same value unifies" true
    (Expr_eval.match_args Bindings.empty rep t2 <> None);
  Alcotest.(check bool) "different values fail" true
    (Expr_eval.match_args Bindings.empty rep t = None)

(* --- fixpoint: reachability vs reference transitive closure ----------------- *)

let reference_closure edges =
  let nodes = List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges) in
  let reach = Hashtbl.create 64 in
  List.iter (fun (a, b) -> Hashtbl.replace reach (a, b) ()) edges;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            List.iter
              (fun c ->
                if Hashtbl.mem reach (a, b) && Hashtbl.mem reach (b, c)
                   && not (Hashtbl.mem reach (a, c)) then begin
                  Hashtbl.replace reach (a, c) ();
                  changed := true
                end)
              nodes)
          nodes)
      nodes
  done;
  Hashtbl.fold (fun (a, b) () acc -> Printf.sprintf "reachable(%s, %s)" a b :: acc) reach []
  |> List.sort compare

let test_fixpoint_reachable_small () =
  let edges = [ ("a", "b"); ("b", "c"); ("c", "a"); ("c", "d") ] in
  let facts =
    String.concat "\n" (List.map (fun (a, b) -> Printf.sprintf "link(@%s, %s)." a b) edges)
  in
  let db = run_src (Ndlog.Programs.reachable_src ^ facts) in
  Alcotest.(check (list string)) "matches reference" (reference_closure edges)
    (results db "reachable")

let prop_fixpoint_reachable_random =
  QCheck.Test.make ~name:"reachable = reference closure" ~count:40
    QCheck.(small_list (pair (int_bound 5) (int_bound 5)))
    (fun raw_edges ->
      let edges =
        List.sort_uniq compare
          (List.filter_map
             (fun (a, b) ->
               if a = b then None
               else Some (Printf.sprintf "v%d" a, Printf.sprintf "v%d" b))
             raw_edges)
      in
      QCheck.assume (edges <> []);
      let facts =
        String.concat "\n"
          (List.map (fun (a, b) -> Printf.sprintf "link(@%s, %s)." a b) edges)
      in
      let db = run_src (Ndlog.Programs.reachable_src ^ facts) in
      results db "reachable" = reference_closure edges)

(* --- fixpoint: best path vs dijkstra ------------------------------------------ *)

let dijkstra nodes edges src =
  let dist = Hashtbl.create 16 in
  Hashtbl.replace dist src 0;
  let visited = Hashtbl.create 16 in
  let rec loop () =
    let best =
      List.fold_left
        (fun acc n ->
          if Hashtbl.mem visited n then acc
          else
            match Hashtbl.find_opt dist n with
            | None -> acc
            | Some d -> ( match acc with Some (_, d') when d' <= d -> acc | _ -> Some (n, d)))
        None nodes
    in
    match best with
    | None -> ()
    | Some (u, du) ->
      Hashtbl.replace visited u ();
      List.iter
        (fun (a, b, c) ->
          if a = u then
            match Hashtbl.find_opt dist b with
            | Some old when old <= du + c -> ()
            | _ -> Hashtbl.replace dist b (du + c))
        edges;
      loop ()
  in
  loop ();
  dist

let check_best_path_against_dijkstra edges =
  let nodes = List.sort_uniq compare (List.concat_map (fun (a, b, _) -> [ a; b ]) edges) in
  let facts =
    String.concat "\n"
      (List.map (fun (a, b, c) -> Printf.sprintf "link(@%s, %s, %d)." a b c) edges)
  in
  let db = run_src (Ndlog.Programs.best_path_src ^ facts) in
  let got = Hashtbl.create 16 in
  Db.iter_rel db "bestPath" (fun t ->
      match (Tuple.arg t 0, Tuple.arg t 1, Tuple.arg t 3) with
      | Value.V_str s, Value.V_str d, Value.V_int c -> Hashtbl.replace got (s, d) c
      | _ -> ());
  List.for_all
    (fun src ->
      let dist = dijkstra nodes edges src in
      List.for_all
        (fun dst ->
          if dst = src then true
          else
            match (Hashtbl.find_opt dist dst, Hashtbl.find_opt got (src, dst)) with
            | None, None -> true
            | Some d, Some g -> d = g
            | _ -> false)
        nodes)
    nodes

let test_best_path_simple () =
  Alcotest.(check bool) "diamond graph" true
    (check_best_path_against_dijkstra
       [ ("a", "b", 1); ("b", "c", 1); ("a", "c", 5); ("c", "d", 1); ("b", "d", 10) ])

let prop_best_path_random =
  QCheck.Test.make ~name:"bestPath = dijkstra" ~count:25
    QCheck.(small_list (triple (int_bound 4) (int_bound 4) (int_range 1 9)))
    (fun raw ->
      let edges =
        List.sort_uniq compare
          (List.filter_map
             (fun (a, b, c) ->
               if a = b then None
               else Some (Printf.sprintf "v%d" a, Printf.sprintf "v%d" b, c))
             raw)
      in
      (* drop duplicate (src,dst) pairs with different costs: keep min *)
      let edges =
        List.fold_left
          (fun acc (a, b, c) ->
            match List.assoc_opt (a, b) acc with
            | Some c' when c' <= c -> acc
            | _ -> ((a, b), c) :: List.remove_assoc (a, b) acc)
          [] edges
        |> List.map (fun ((a, b), c) -> (a, b, c))
      in
      QCheck.assume (edges <> []);
      check_best_path_against_dijkstra edges)

(* --- aggregates ------------------------------------------------------------------ *)

let test_count_aggregate () =
  let db =
    run_src
      {|
m1 cnt(@S, a_COUNT<T>) :- ev(@S, T).
ev(@a, 1). ev(@a, 2). ev(@a, 2). ev(@b, 5).
|}
  in
  (* distinct T values per group *)
  Alcotest.(check (list string)) "counts" [ "cnt(a, 2)"; "cnt(b, 1)" ] (results db "cnt")

let test_sum_aggregate () =
  let db =
    run_src
      {|
m1 total(@S, a_SUM<T>) :- ev(@S, T).
ev(@a, 1). ev(@a, 2). ev(@b, 5).
|}
  in
  Alcotest.(check (list string)) "sums" [ "total(a, 3)"; "total(b, 5)" ] (results db "total")

let test_max_aggregate () =
  let db =
    run_src
      {|
m1 hi(@S, a_MAX<T>) :- ev(@S, T).
ev(@a, 1). ev(@a, 7). ev(@a, 3).
|}
  in
  Alcotest.(check (list string)) "max" [ "hi(a, 7)" ] (results db "hi")

let test_negation_stratified () =
  let db =
    run_src
      {|
r1 candidate(@S, D) :- edge(@S, D).
r2 blocked(@S, D) :- edge(@S, D), bad(@S, D).
r3 ok(@S, D) :- candidate(@S, D), not blocked(@S, D).
edge(@a, b). edge(@a, c). bad(@a, c).
|}
  in
  Alcotest.(check (list string)) "negation filters" [ "ok(a, b)" ] (results db "ok")

let test_says_matching () =
  (* a says literal binds its principal variable once per asserter
     delivered through the frontier *)
  let db = Db.create () in
  let t = Tuple.make "claim" [ v_str "x" ] in
  let p = parse "At Me:\nr out(W, X) :- W says claim(X)." in
  let deliver asserter =
    ignore
      (Eval.run_fixpoint db ~now:0.0 ~rules:(Ndlog.Ast.rules p) ~local:None
         ~self_principal:(v_str "me")
         ~pending:[ { Eval.f_tuple = t; f_asserter = Some (v_str asserter) } ]
         ~on_derive:(fun _ -> ())
         ())
  in
  deliver "alice";
  deliver "bob";
  deliver "carol";
  Alcotest.(check (list string)) "one binding per asserter"
    [ "out(alice, x)"; "out(bob, x)"; "out(carol, x)" ]
    (results db "out");
  (* an unasserted tuple never matches a says literal *)
  ignore
    (Eval.run_fixpoint db ~now:0.0 ~rules:(Ndlog.Ast.rules p) ~local:None
       ~self_principal:(v_str "me")
       ~pending:[ { Eval.f_tuple = Tuple.make "claim" [ v_str "y" ]; f_asserter = None } ]
       ~on_derive:(fun _ -> ())
       ());
  Alcotest.(check int) "unasserted ignored" 3 (Db.cardinal db "out")

let test_derivation_callback () =
  let derivs = ref [] in
  let p = parse (Ndlog.Programs.reachable_src ^ "link(@a, b). link(@b, c).") in
  let _db = Eval.run_single_site ~on_derive:(fun d -> derivs := d :: !derivs) p in
  (* r1 twice (two links), r2 via the chain *)
  Alcotest.(check bool) "r1 fired" true
    (List.exists (fun (d : Eval.derivation) -> d.d_rule = "r1") !derivs);
  Alcotest.(check bool) "r2 fired" true
    (List.exists (fun (d : Eval.derivation) -> d.d_rule = "r2") !derivs);
  let r2 = List.find (fun (d : Eval.derivation) -> d.d_rule = "r2") !derivs in
  Alcotest.(check int) "r2 body size" 2 (List.length r2.d_body)

let test_emits_remote () =
  (* with a local address set, tuples addressed elsewhere are emitted *)
  let p = Ndlog.Localize.localize_program (parse Ndlog.Programs.reachable_src) in
  let db = Db.create () in
  let link = Tuple.make "link" [ v_str "a"; v_str "b" ] in
  let emits, _ =
    Eval.run_fixpoint db ~now:0.0 ~rules:(Ndlog.Ast.rules p) ~local:(Some "a")
      ~pending:[ { Eval.f_tuple = link; f_asserter = None } ]
      ~on_derive:(fun _ -> ())
      ()
  in
  (* r2_l0 ships r2_mid0(b, a) to b *)
  Alcotest.(check bool) "ships helper to b" true
    (List.exists
       (fun (e : Eval.emit) -> e.e_dest = "b" && e.e_tuple.Tuple.rel = "r2_mid0")
       emits);
  (* reachable(a,b) stays local *)
  Alcotest.(check bool) "local reachable" true (Db.mem db (Tuple.make "reachable" [ v_str "a"; v_str "b" ]))

let suite : unit Alcotest.test_case list =
  [ Alcotest.test_case "value compare" `Quick test_value_compare_total;
    Alcotest.test_case "value hash" `Quick test_value_hash_consistent;
    Alcotest.test_case "value printing" `Quick test_value_to_string;
    Alcotest.test_case "tuple basics" `Quick test_tuple_basics;
    Alcotest.test_case "db set semantics" `Quick test_db_set_semantics;
    Alcotest.test_case "db replace min" `Quick test_db_replace_min;
    Alcotest.test_case "db replace last" `Quick test_db_replace_last;
    Alcotest.test_case "db ttl eviction" `Quick test_db_ttl_eviction;
    Alcotest.test_case "db set_ttl semantics" `Quick test_db_set_ttl_semantics;
    Alcotest.test_case "db refresh-on-rederive" `Quick test_db_refresh_on_rederive;
    Alcotest.test_case "db asserters" `Quick test_db_asserters;
    Alcotest.test_case "db remove" `Quick test_db_remove;
    Alcotest.test_case "expr arithmetic" `Quick test_expr_arithmetic;
    Alcotest.test_case "expr builtins" `Quick test_expr_builtins;
    Alcotest.test_case "pattern matching" `Quick test_match_args;
    Alcotest.test_case "reachable fixpoint" `Quick test_fixpoint_reachable_small;
    Alcotest.test_case "best path (diamond)" `Quick test_best_path_simple;
    Alcotest.test_case "COUNT aggregate" `Quick test_count_aggregate;
    Alcotest.test_case "SUM aggregate" `Quick test_sum_aggregate;
    Alcotest.test_case "MAX aggregate" `Quick test_max_aggregate;
    Alcotest.test_case "stratified negation" `Quick test_negation_stratified;
    Alcotest.test_case "says matching" `Quick test_says_matching;
    Alcotest.test_case "derivation callback" `Quick test_derivation_callback;
    Alcotest.test_case "remote emits" `Quick test_emits_remote ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_fixpoint_reachable_random; prop_best_path_random ]

(* --- ring builtins (Chord support) ------------------------------------- *)

let test_ring_builtins () =
  let b = Bindings.of_list [ ("K", v_int 5); ("A", v_int 3); ("B", v_int 8) ] in
  let check name src expected =
    Alcotest.(check string) name expected (Value.to_string (eval_term b src))
  in
  check "inside" "f_in_ring(K, A, B)" "true";
  check "boundary B inclusive" "f_in_ring(8, A, B)" "true";
  check "boundary A exclusive" "f_in_ring(3, A, B)" "false";
  check "outside" "f_in_ring(9, A, B)" "false";
  (* wrapped interval (B < A) *)
  check "wrap low" "f_in_ring(1, 8, 3)" "true";
  check "wrap high" "f_in_ring(9, 8, 3)" "true";
  check "wrap outside" "f_in_ring(5, 8, 3)" "false";
  (* degenerate interval = full ring *)
  check "full ring" "f_in_ring(5, 2, 2)" "true";
  (* ring distance *)
  check "dist forward" "f_ring_dist(3, 8, 16)" "5";
  check "dist wrap" "f_ring_dist(8, 3, 16)" "11";
  check "dist zero" "f_ring_dist(4, 4, 16)" "0"

let suite =
  suite @ [ Alcotest.test_case "ring builtins" `Quick test_ring_builtins ]

(* --- path-vector with import policies (the paper's BGP example) --------- *)

let pv_routes db =
  Db.tuples_of db "bestRoute" |> List.map Tuple.to_string |> List.sort compare

let test_path_vector_policy_open () =
  (* with a fully permissive policy, a line a-b-c routes end to end *)
  let src =
    Ndlog.Programs.path_vector_policy_src
    ^ {|
link(@a, b, 1). link(@b, c, 1). link(@b, a, 1). link(@c, b, 1).
acceptFrom(@a, b). acceptFrom(@b, a). acceptFrom(@b, c). acceptFrom(@c, b).
|}
  in
  let db = run_src src in
  Alcotest.(check bool) "a reaches c" true
    (List.mem "bestRoute(a, c, [a,b,c])" (pv_routes db));
  Alcotest.(check bool) "c reaches a" true
    (List.mem "bestRoute(c, a, [c,b,a])" (pv_routes db))

let test_path_vector_policy_filters () =
  (* c refuses imports from b: it never learns a route to a, while the
     reverse direction (a <- b <- c) still works *)
  let src =
    Ndlog.Programs.path_vector_policy_src
    ^ {|
link(@a, b, 1). link(@b, c, 1). link(@b, a, 1). link(@c, b, 1).
acceptFrom(@a, b). acceptFrom(@b, a). acceptFrom(@b, c).
|}
  in
  let db = run_src src in
  Alcotest.(check bool) "c has no route to a" false
    (List.exists
       (fun r -> String.length r >= 14 && String.sub r 0 14 = "bestRoute(c, a")
       (pv_routes db));
  Alcotest.(check bool) "a still reaches c" true
    (List.mem "bestRoute(a, c, [a,b,c])" (pv_routes db))

let test_path_vector_prefers_short_paths () =
  (* a direct link beats a two-hop detour under MIN path length *)
  let src =
    Ndlog.Programs.path_vector_policy_src
    ^ {|
link(@a, c, 1). link(@a, b, 1). link(@b, c, 1).
acceptFrom(@a, b). acceptFrom(@b, a). acceptFrom(@c, a). acceptFrom(@c, b).
|}
  in
  let db = run_src src in
  Alcotest.(check bool) "direct route wins" true
    (List.mem "bestRoute(a, c, [a,c])" (pv_routes db))

let suite =
  suite
  @ [ Alcotest.test_case "path-vector: open policy" `Quick test_path_vector_policy_open;
      Alcotest.test_case "path-vector: policy filters" `Quick test_path_vector_policy_filters;
      Alcotest.test_case "path-vector: shortest wins" `Quick test_path_vector_prefers_short_paths ]

(* Telemetry integration: a distributed best-path run must populate
   the shared metrics registry — the fixpoint layer records rounds and
   the wire layer records message counts, so both are nonzero after a
   run over a connected topology. *)
let test_run_emits_metrics () =
  Obs.Metrics.reset Obs.Metrics.default;
  let topo = Net.Topology.random (Crypto.Rng.create ~seed:7) ~n:6 () in
  let cfg = { Core.Config.ndlog with Core.Config.rsa_bits = 384 } in
  let t =
    Core.Runtime.create ~rng:(Crypto.Rng.create ~seed:8) ~cfg ~topo
      ~program:(Ndlog.Programs.best_path ()) ()
  in
  Core.Runtime.install_links t;
  ignore (Core.Runtime.run t);
  let v name = Obs.Metrics.value (Obs.Metrics.counter Obs.Metrics.default name) in
  Alcotest.(check bool) "eval.rounds nonzero" true (v "eval.rounds" > 0);
  Alcotest.(check bool) "wire.messages nonzero" true (v "wire.messages" > 0)

let suite =
  suite
  @ [ Alcotest.test_case "run emits eval/wire metrics" `Quick test_run_emits_metrics ]

(* --- secondary indexes and semi-naive dedupe ----------------------------- *)

(* Direct probe API: buckets stay current across inserts, replaces and
   removals that happen after the index was lazily built. *)
let test_db_probe_maintenance () =
  let db = Db.create () in
  let mk k c = Tuple.make "e" [ v_str k; v_int c ] in
  List.iter (fun t -> ignore (Db.insert db ~now:0.0 t)) [ mk "a" 1; mk "a" 2; mk "b" 3 ];
  let probe k =
    Db.probe db "e" ~cols:[ 0 ] ~key:[ v_str k ]
    |> List.map Tuple.to_string |> List.sort compare
  in
  Alcotest.(check (list string)) "bucket a" [ "e(a, 1)"; "e(a, 2)" ] (probe "a");
  Db.remove db (mk "a" 1);
  Alcotest.(check (list string)) "remove maintained" [ "e(a, 2)" ] (probe "a");
  ignore (Db.insert db ~now:0.0 (mk "a" 9));
  Alcotest.(check (list string)) "insert maintained" [ "e(a, 2)"; "e(a, 9)" ] (probe "a");
  Alcotest.(check (list string)) "other bucket" [ "e(b, 3)" ] (probe "b");
  Alcotest.(check (list string)) "miss is empty" [] (probe "zz");
  (* replace policies keep at most one tuple per bucket *)
  Db.set_policy db "best" (Db.Replace { key = [ 0 ]; prefer = Db.P_min 1 });
  let bk k c = Tuple.make "best" [ v_str k; v_int c ] in
  ignore (Db.insert db ~now:0.0 (bk "x" 10));
  let probe_best k =
    Db.probe db "best" ~cols:[ 0 ] ~key:[ v_str k ] |> List.map Tuple.to_string
  in
  Alcotest.(check (list string)) "before replace" [ "best(x, 10)" ] (probe_best "x");
  ignore (Db.insert db ~now:0.0 (bk "x" 4));
  Alcotest.(check (list string)) "incumbent deindexed" [ "best(x, 4)" ] (probe_best "x")

(* Regression: a derivation whose body joins two tuples that entered
   the frontier in the same round must be found exactly once — the
   seed double-counted it, once per delta position. *)
let test_two_delta_join_counted_once () =
  let src = {|
j1 out(@X, Y) :- a(@X), b(@Y).
a(@x). b(@y).
|}
  in
  let count = ref 0 in
  let _db =
    Eval.run_single_site
      ~on_derive:(fun d -> if d.Eval.d_rule = "j1" then incr count)
      (parse src)
  in
  Alcotest.(check int) "one derivation from two frontier tuples" 1 !count

(* A keyed relation can replace a tuple after it entered the frontier;
   the dead tuple must not join (stale-frontier filter), and the
   replaced incumbent must be gone from the index the join probes. *)
let test_replace_stale_frontier_indexed () =
  let p = parse "r1 out(@X, C) :- best(@X, C), tag(@X)." in
  let db = Db.create () in
  Db.set_policy db "best" (Db.Replace { key = [ 0 ]; prefer = Db.P_min 1 });
  let pending =
    List.map
      (fun t -> { Eval.f_tuple = t; f_asserter = None })
      [ Tuple.make "tag" [ v_str "a" ];
        Tuple.make "best" [ v_str "a"; v_int 10 ];
        Tuple.make "best" [ v_str "a"; v_int 3 ] ]
  in
  ignore
    (Eval.run_fixpoint db ~now:0.0 ~rules:(Ndlog.Ast.rules p) ~local:None ~pending
       ~on_derive:(fun _ -> ())
       ());
  Alcotest.(check (list string)) "superseded tuple not resurrected" [ "out(a, 3)" ]
    (results db "out")

(* The indexed evaluator and the scan evaluator must compute the same
   fixpoint. *)
let test_index_onoff_equivalence () =
  let src =
    Ndlog.Programs.best_path_src
    ^ {|
link(@a, b, 1). link(@b, d, 1). link(@a, c, 5). link(@c, d, 1).
link(@b, a, 1). link(@d, b, 1). link(@c, a, 5). link(@d, c, 1).
|}
  in
  let run ~indexing =
    let p = parse src in
    let db = Db.create ~indexing () in
    Db.configure_from_program db p;
    let pending =
      List.map
        (fun (f : Ndlog.Ast.fact) ->
          { Eval.f_tuple =
              { Tuple.rel = f.fact_pred;
                args = Array.of_list (List.map Value.of_const f.fact_args) };
            f_asserter = None })
        (Ndlog.Ast.facts p)
    in
    ignore
      (Eval.run_fixpoint db ~now:0.0 ~rules:(Ndlog.Ast.rules p) ~local:None ~pending
         ~on_derive:(fun _ -> ())
         ());
    db
  in
  let indexed = run ~indexing:true and scanned = run ~indexing:false in
  List.iter
    (fun rel ->
      Alcotest.(check (list string))
        (rel ^ " identical") (results scanned rel) (results indexed rel))
    [ "bestPath"; "bestPathCost"; "path" ]

(* A compound At-context reaching the evaluator (bypassing analysis)
   raises Rule_error instead of silently running context-free. *)
let test_compound_context_rejected_eval () =
  Alcotest.check_raises "compound context"
    (Eval.Rule_error
       "rule r1: At-context must be a principal variable or constant, not a \
        compound expression")
    (fun () ->
      ignore (Eval.run_single_site (parse "q(@a).\nAt S + S:\nr1 p(S) :- q(S).")))

let suite =
  suite
  @ [ Alcotest.test_case "db probe maintenance" `Quick test_db_probe_maintenance;
      Alcotest.test_case "two-delta join counted once" `Quick test_two_delta_join_counted_once;
      Alcotest.test_case "replace + stale frontier (indexed)" `Quick
        test_replace_stale_frontier_indexed;
      Alcotest.test_case "index on/off equivalence" `Quick test_index_onoff_equivalence;
      Alcotest.test_case "compound At-context rejected" `Quick
        test_compound_context_rejected_eval ]
