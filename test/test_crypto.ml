(* Tests for the crypto substrate: PRNG, SHA-256 (FIPS vectors),
   HMAC (RFC 4231), Miller-Rabin, RSA. *)

open Crypto

(* --- Rng --------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 100 do
    let v = Rng.int_in_range rng ~lo:5 ~hi:9 in
    Alcotest.(check bool) "in closed range" true (v >= 5 && v <= 9)
  done

let test_rng_split_independent () =
  let parent = Rng.create ~seed:1 in
  let c1 = Rng.split parent and c2 = Rng.split parent in
  let s1 = List.init 20 (fun _ -> Rng.int c1 1000000) in
  let s2 = List.init 20 (fun _ -> Rng.int c2 1000000) in
  Alcotest.(check bool) "children differ" true (s1 <> s2)

let test_rng_uniformish () =
  (* crude chi-square-free sanity: each bucket within 3x of expected *)
  let rng = Rng.create ~seed:5 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10000 do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "bucket sane" true (c > 300 && c < 3000))
    buckets

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:9 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* --- SHA-256 ------------------------------------------------------------ *)

let test_sha256_fips_vectors () =
  let cases =
    [ ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
         ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
        "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" ) ]
  in
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) "digest" expected (Sha256.hex_digest input))
    cases

let test_sha256_million_a () =
  Alcotest.(check string) "10^6 x a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex_digest (String.make 1_000_000 'a'))

let test_sha256_incremental () =
  (* feeding in chunks agrees with one-shot, across block boundaries *)
  let msg = String.init 300 (fun i -> Char.chr (i mod 256)) in
  List.iter
    (fun chunk ->
      let ctx = Sha256.init () in
      let rec go off =
        if off < String.length msg then begin
          let n = min chunk (String.length msg - off) in
          Sha256.feed ctx (String.sub msg off n);
          go (off + n)
        end
      in
      go 0;
      Alcotest.(check string) (Printf.sprintf "chunk %d" chunk)
        (Sha256.hex_digest msg)
        (Sha256.to_hex (Sha256.finalize ctx)))
    [ 1; 7; 63; 64; 65; 128 ]

let test_sha256_padding_boundaries () =
  (* lengths around the 55/56/64 byte padding edges must all differ *)
  let digests = List.init 70 (fun n -> Sha256.hex_digest (String.make n 'x')) in
  Alcotest.(check int) "all distinct" 70
    (List.length (List.sort_uniq compare digests))

(* --- HMAC ---------------------------------------------------------------- *)

let test_hmac_rfc4231 () =
  (* RFC 4231 test case 1 *)
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.hex ~key:(String.make 20 '\x0b') "Hi There");
  (* test case 2 *)
  Alcotest.(check string) "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.hex ~key:"Jefe" "what do ya want for nothing?");
  (* test case 3: 20-byte 0xaa key, 50-byte 0xdd data *)
  Alcotest.(check string) "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.hex ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'))

let test_hmac_long_key () =
  (* keys longer than the block size are hashed first (RFC 4231 case 6) *)
  Alcotest.(check string) "long key"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.hex ~key:(String.make 131 '\xaa') "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_verify () =
  let tag = Hmac.sha256 ~key:"k" "message" in
  Alcotest.(check bool) "verify ok" true (Hmac.verify ~key:"k" ~tag "message");
  Alcotest.(check bool) "wrong msg" false (Hmac.verify ~key:"k" ~tag "messagf");
  Alcotest.(check bool) "wrong key" false (Hmac.verify ~key:"K" ~tag "message")

(* --- primes ---------------------------------------------------------------- *)

let test_small_primes_classified () =
  let rng = Rng.create ~seed:5 in
  let primes = [ 2; 3; 5; 7; 11; 101; 7919; 104729 ] in
  let composites = [ 0; 1; 4; 9; 100; 561 (* Carmichael *); 7917; 104730 ] in
  List.iter
    (fun p ->
      Alcotest.(check bool) (Printf.sprintf "%d prime" p) true
        (Prime.is_probable_prime rng (Bignum.Nat.of_int p)))
    primes;
  List.iter
    (fun c ->
      Alcotest.(check bool) (Printf.sprintf "%d composite" c) false
        (Prime.is_probable_prime rng (Bignum.Nat.of_int c)))
    composites

let test_generate_prime_width () =
  let rng = Rng.create ~seed:6 in
  List.iter
    (fun bits ->
      let p = Prime.generate rng ~bits in
      Alcotest.(check int) "width" bits (Bignum.Nat.bits p);
      Alcotest.(check bool) "odd" false (Bignum.Nat.is_even p))
    [ 16; 32; 64; 128 ]

(* --- RSA --------------------------------------------------------------------- *)

let test_rsa_sign_verify () =
  let rng = Rng.create ~seed:11 in
  let kp = Rsa.generate rng ~bits:384 in
  let s = Rsa.sign kp.private_ "hello world" in
  Alcotest.(check int) "sig width" 48 (String.length s);
  Alcotest.(check bool) "verifies" true (Rsa.verify kp.public ~signature:s "hello world");
  Alcotest.(check bool) "tampered msg" false
    (Rsa.verify kp.public ~signature:s "hello worle");
  (* tampered signature *)
  let s' = Bytes.of_string s in
  Bytes.set s' 10 (Char.chr (Char.code (Bytes.get s' 10) lxor 1));
  Alcotest.(check bool) "tampered sig" false
    (Rsa.verify kp.public ~signature:(Bytes.to_string s') "hello world")

let test_rsa_wrong_key () =
  let rng = Rng.create ~seed:12 in
  let kp1 = Rsa.generate rng ~bits:384 in
  let kp2 = Rsa.generate rng ~bits:384 in
  let s = Rsa.sign kp1.private_ "msg" in
  Alcotest.(check bool) "cross key" false (Rsa.verify kp2.public ~signature:s "msg")

let test_rsa_deterministic_keygen () =
  let kp1 = Rsa.generate (Rng.create ~seed:13) ~bits:384 in
  let kp2 = Rsa.generate (Rng.create ~seed:13) ~bits:384 in
  Alcotest.(check string) "same keys from same seed"
    (Rsa.public_to_string kp1.public) (Rsa.public_to_string kp2.public)

let test_rsa_public_key_serialization () =
  let kp = Rsa.generate (Rng.create ~seed:14) ~bits:384 in
  match Rsa.public_of_string (Rsa.public_to_string kp.public) with
  | None -> Alcotest.fail "roundtrip failed"
  | Some pub ->
    let s = Rsa.sign kp.private_ "x" in
    Alcotest.(check bool) "verify with parsed key" true (Rsa.verify pub ~signature:s "x");
    Alcotest.(check string) "fingerprint stable" (Rsa.fingerprint kp.public)
      (Rsa.fingerprint pub)

let test_rsa_modulus_too_small () =
  Alcotest.check_raises "too small" (Invalid_argument "Rsa.generate: modulus too small")
    (fun () -> ignore (Rsa.generate (Rng.create ~seed:1) ~bits:32))

(* --- CRT / Montgomery fast path ----------------------------------------------- *)

let nat = Alcotest.testable (fun fmt n -> Format.fprintf fmt "%s" (Bignum.Nat.to_string n))
    Bignum.Nat.equal

let test_rsa_crt_material () =
  let kp = Rsa.generate (Rng.create ~seed:21) ~bits:384 in
  match kp.private_.crt with
  | None -> Alcotest.fail "generate did not retain CRT material"
  | Some c ->
    let open Bignum in
    Alcotest.check nat "p*q = n" kp.public.n (Nat.mul c.p c.q);
    Alcotest.check nat "d_p = d mod p-1"
      (Nat.rem kp.private_.d (Nat.sub c.p Nat.one)) c.d_p;
    Alcotest.check nat "d_q = d mod q-1"
      (Nat.rem kp.private_.d (Nat.sub c.q Nat.one)) c.d_q;
    Alcotest.check nat "q_inv * q = 1 mod p" Nat.one (Nat.rem (Nat.mul c.q_inv c.q) c.p)

let test_rsa_fastpath_byte_identity () =
  (* The acceptance bar for the whole fast path: CRT/Montgomery signing
     must be byte-identical to naive exponentiation, and each path's
     signatures must verify under the other path. *)
  let kp = Rsa.generate (Rng.create ~seed:22) ~bits:384 in
  List.iter
    (fun msg ->
      let fast = Rsa.sign ~fastpath:true kp.private_ msg in
      let naive = Rsa.sign ~fastpath:false kp.private_ msg in
      Alcotest.(check string) "identical bytes" naive fast;
      Alcotest.(check bool) "fast verifies naive sig" true
        (Rsa.verify ~fastpath:true kp.public ~signature:naive msg);
      Alcotest.(check bool) "naive verifies fast sig" true
        (Rsa.verify ~fastpath:false kp.public ~signature:fast msg))
    [ ""; "x"; "hello world"; String.make 1000 'z'; "\x00\x01\xff" ]

let test_rsa_fastpath_global_default () =
  let kp = Rsa.generate (Rng.create ~seed:23) ~bits:384 in
  Alcotest.(check bool) "fastpath on initially" true (Rsa.fastpath_enabled ());
  let s_default = Rsa.sign kp.private_ "msg" in
  Rsa.set_fastpath false;
  Fun.protect
    ~finally:(fun () -> Rsa.set_fastpath true)
    (fun () ->
      Alcotest.(check bool) "toggle observed" false (Rsa.fastpath_enabled ());
      Alcotest.(check string) "default path changes nothing" s_default
        (Rsa.sign kp.private_ "msg"))

(* --- properties --------------------------------------------------------------- *)

let prop_sha_distinct =
  QCheck.Test.make ~name:"sha256 injective on samples" ~count:200
    QCheck.(pair small_string small_string)
    (fun (a, b) -> a = b || Sha256.digest a <> Sha256.digest b)

let prop_hmac_key_sensitivity =
  QCheck.Test.make ~name:"hmac distinguishes keys" ~count:100
    QCheck.(triple small_string small_string small_string)
    (fun (k1, k2, msg) -> k1 = k2 || Hmac.sha256 ~key:k1 msg <> Hmac.sha256 ~key:k2 msg)

let shared_kp = lazy (Rsa.generate (Rng.create ~seed:77) ~bits:384)

let prop_rsa_roundtrip =
  QCheck.Test.make ~name:"rsa sign/verify roundtrip" ~count:25 QCheck.small_string
    (fun msg ->
      let kp = Lazy.force shared_kp in
      Rsa.verify kp.public ~signature:(Rsa.sign kp.private_ msg) msg)

let prop_rsa_fastpath_matches_naive =
  QCheck.Test.make ~name:"crt/montgomery signing = naive signing" ~count:20
    QCheck.small_string (fun msg ->
      let kp = Lazy.force shared_kp in
      String.equal
        (Rsa.sign ~fastpath:true kp.private_ msg)
        (Rsa.sign ~fastpath:false kp.private_ msg))

let suite : unit Alcotest.test_case list =
  [ Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng uniform-ish" `Quick test_rng_uniformish;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "sha256 FIPS vectors" `Quick test_sha256_fips_vectors;
    Alcotest.test_case "sha256 million a" `Slow test_sha256_million_a;
    Alcotest.test_case "sha256 incremental" `Quick test_sha256_incremental;
    Alcotest.test_case "sha256 padding edges" `Quick test_sha256_padding_boundaries;
    Alcotest.test_case "hmac RFC 4231" `Quick test_hmac_rfc4231;
    Alcotest.test_case "hmac long key" `Quick test_hmac_long_key;
    Alcotest.test_case "hmac verify" `Quick test_hmac_verify;
    Alcotest.test_case "prime classification" `Quick test_small_primes_classified;
    Alcotest.test_case "prime width" `Quick test_generate_prime_width;
    Alcotest.test_case "rsa sign/verify" `Quick test_rsa_sign_verify;
    Alcotest.test_case "rsa wrong key" `Quick test_rsa_wrong_key;
    Alcotest.test_case "rsa deterministic keygen" `Quick test_rsa_deterministic_keygen;
    Alcotest.test_case "rsa key serialization" `Quick test_rsa_public_key_serialization;
    Alcotest.test_case "rsa modulus too small" `Quick test_rsa_modulus_too_small;
    Alcotest.test_case "rsa crt material" `Quick test_rsa_crt_material;
    Alcotest.test_case "rsa fastpath byte identity" `Quick test_rsa_fastpath_byte_identity;
    Alcotest.test_case "rsa fastpath global default" `Quick test_rsa_fastpath_global_default ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_sha_distinct; prop_hmac_key_sensitivity; prop_rsa_roundtrip;
        prop_rsa_fastpath_matches_naive ]
