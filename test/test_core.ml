(* Integration tests for the distributed runtime and the use-case
   layers: correctness of the distributed fixpoint against reference
   algorithms, authentication end to end, the provenance taxonomy
   behaviours (local/distributed, online/offline, proactive/reactive,
   sampled, AS granularity), traceback, diagnostics, forensics,
   accountability, trust management, and the benchmark metrics. *)

open Engine

let rsa_bits = 384

let mk_runtime ?directory ?(cfg = Core.Config.ndlog) ?(seed = 7) ?(n = 8)
    ?(program = Ndlog.Programs.best_path ()) () =
  let topo = Net.Topology.random (Crypto.Rng.create ~seed) ~n () in
  let cfg = { cfg with Core.Config.rsa_bits } in
  let t =
    Core.Runtime.create ?directory ~rng:(Crypto.Rng.create ~seed:(seed + 1)) ~cfg ~topo
      ~program ()
  in
  (t, topo)

let run_links t =
  Core.Runtime.install_links t;
  ignore (Core.Runtime.run t)

(* reference shortest paths *)
let dijkstra_all (topo : Net.Topology.t) =
  let dist = Hashtbl.create 128 in
  List.iter
    (fun src ->
      let d = Hashtbl.create 16 in
      Hashtbl.replace d src 0;
      let visited = Hashtbl.create 16 in
      let rec loop () =
        let best =
          List.fold_left
            (fun acc n ->
              if Hashtbl.mem visited n then acc
              else
                match Hashtbl.find_opt d n with
                | None -> acc
                | Some dn -> (
                  match acc with Some (_, db) when db <= dn -> acc | _ -> Some (n, dn)))
            None topo.nodes
        in
        match best with
        | None -> ()
        | Some (u, du) ->
          Hashtbl.replace visited u ();
          List.iter
            (fun (l : Net.Topology.link) ->
              if l.l_src = u then
                match Hashtbl.find_opt d l.l_dst with
                | Some old when old <= du + l.l_cost -> ()
                | _ -> Hashtbl.replace d l.l_dst (du + l.l_cost))
            topo.links;
          loop ()
      in
      loop ();
      List.iter
        (fun dst ->
          if dst <> src then
            match Hashtbl.find_opt d dst with
            | Some c -> Hashtbl.replace dist (src, dst) c
            | None -> ())
        topo.nodes)
    topo.nodes;
  dist

let best_path_costs t =
  List.filter_map
    (fun (_, tu) ->
      match (Tuple.arg tu 0, Tuple.arg tu 1, Tuple.arg tu 3) with
      | Value.V_str s, Value.V_str d, Value.V_int c -> Some ((s, d), c)
      | _ -> None)
    (Core.Runtime.query_all t "bestPath")

let check_against_dijkstra t topo name =
  let truth = dijkstra_all topo in
  let got = best_path_costs t in
  Alcotest.(check int) (name ^ ": pair count") (Hashtbl.length truth) (List.length got);
  List.iter
    (fun ((s, d), c) ->
      match Hashtbl.find_opt truth (s, d) with
      | Some c' -> Alcotest.(check int) (Printf.sprintf "%s: %s->%s" name s d) c' c
      | None -> Alcotest.failf "%s: unexpected pair %s->%s" name s d)
    got

(* --- distributed correctness ------------------------------------------- *)

let test_distributed_ndlog_correct () =
  let t, topo = mk_runtime () in
  run_links t;
  check_against_dijkstra t topo "ndlog"

let test_distributed_sendlog_correct () =
  let t, topo = mk_runtime ~cfg:Core.Config.sendlog () in
  run_links t;
  check_against_dijkstra t topo "sendlog";
  let st = Core.Runtime.stats t in
  Alcotest.(check int) "every message signed" st.messages st.signatures_generated;
  Alcotest.(check int) "every message verified" st.messages st.signatures_verified;
  Alcotest.(check int) "no failures" 0 st.verification_failures

let test_distributed_sendlogprov_correct () =
  let t, topo = mk_runtime ~cfg:Core.Config.sendlog_prov () in
  run_links t;
  check_against_dijkstra t topo "sendlogprov";
  (* provenance bytes actually shipped *)
  let st = Core.Runtime.stats t in
  Alcotest.(check bool) "provenance bytes > per-message flag byte" true
    (st.bytes_provenance > st.messages)

let test_sendlog_program_variant () =
  (* the SeNDlog-with-says Best-Path program computes the same costs *)
  let t, topo = mk_runtime ~cfg:Core.Config.sendlog_prov
      ~program:(Ndlog.Programs.sendlog_best_path ()) ()
  in
  run_links t;
  check_against_dijkstra t topo "sendlog-says-program"

let test_three_configs_agree () =
  let topo = Net.Topology.random (Crypto.Rng.create ~seed:17) ~n:10 () in
  let directory =
    Sendlog.Principal.directory_for (Crypto.Rng.create ~seed:18) ~rsa_bits topo.nodes
  in
  let results =
    List.map
      (fun cfg ->
        let t =
          Core.Runtime.create ~directory ~rng:(Crypto.Rng.create ~seed:19)
            ~cfg:{ cfg with Core.Config.rsa_bits } ~topo
            ~program:(Ndlog.Programs.best_path ()) ()
        in
        run_links t;
        List.sort compare (best_path_costs t))
      [ Core.Config.ndlog; Core.Config.sendlog; Core.Config.sendlog_prov ]
  in
  match results with
  | [ a; b; c ] ->
    Alcotest.(check bool) "ndlog = sendlog" true (a = b);
    Alcotest.(check bool) "sendlog = sendlogprov" true (b = c)
  | _ -> assert false

(* --- authentication end to end --------------------------------------------- *)

let test_forged_messages_dropped () =
  (* a sender whose key is not the directory's key for its name: every
     message it signs must be dropped *)
  let topo = Net.Topology.line ~n:3 () in
  let directory =
    Sendlog.Principal.directory_for (Crypto.Rng.create ~seed:31) ~rsa_bits topo.nodes
  in
  (* replace n1's key *after* the directory was distributed: simulate
     by registering a different key under the same name in a second
     directory used only by the sender *)
  let t =
    Core.Runtime.create ~directory ~rng:(Crypto.Rng.create ~seed:32)
      ~cfg:{ Core.Config.sendlog with rsa_bits } ~topo
      ~program:(Ndlog.Programs.best_path ()) ()
  in
  (* corrupt n1's signing key so its signatures no longer match the
     directory's public key *)
  let rogue = Sendlog.Principal.create (Crypto.Rng.create ~seed:33) ~name:"n1" ~rsa_bits () in
  Core.Runtime.replace_principal t ~at:"n1" rogue;
  run_links t;
  Alcotest.(check bool) "forged messages dropped" true (Core.Runtime.dropped_forged t > 0);
  let st = Core.Runtime.stats t in
  Alcotest.(check bool) "failures recorded" true (st.verification_failures > 0)

let test_forged_messages_dropped_batched () =
  (* the same adversary under the pipelined batch verifier (jobs > 1):
     signatures are checked asynchronously in slabs, but per-message
     accept/forge accounting must be preserved — every forged message
     is still dropped and counted at its own accept point *)
  Obs.Metrics.reset Obs.Metrics.default;
  let topo = Net.Topology.line ~n:3 () in
  let directory =
    Sendlog.Principal.directory_for (Crypto.Rng.create ~seed:31) ~rsa_bits topo.nodes
  in
  let cfg = Core.Config.with_jobs { Core.Config.sendlog with rsa_bits } 4 in
  let t =
    Core.Runtime.create ~directory ~rng:(Crypto.Rng.create ~seed:32) ~cfg ~topo
      ~program:(Ndlog.Programs.best_path ()) ()
  in
  let rogue = Sendlog.Principal.create (Crypto.Rng.create ~seed:33) ~name:"n1" ~rsa_bits () in
  Core.Runtime.replace_principal t ~at:"n1" rogue;
  run_links t;
  Alcotest.(check bool) "forged messages dropped" true (Core.Runtime.dropped_forged t > 0);
  let st = Core.Runtime.stats t in
  Alcotest.(check bool) "failures recorded" true (st.verification_failures > 0);
  (* the run really went through the batched pipeline *)
  Alcotest.(check bool) "slabs were used" true
    (Obs.Metrics.value (Obs.Metrics.counter Obs.Metrics.default "crypto.verify_batches") > 0);
  Core.Runtime.shutdown t

(* --- provenance taxonomy ------------------------------------------------------ *)

let paper_topology_runtime cfg =
  (* the 3-node Figure 1/2 network running reachability *)
  let topo = Net.Topology.paper_example () in
  let t =
    Core.Runtime.create ~rng:(Crypto.Rng.create ~seed:41)
      ~cfg:{ cfg with Core.Config.rsa_bits } ~topo
      ~program:(Ndlog.Programs.reachable ()) ()
  in
  List.iter
    (fun (l : Net.Topology.link) ->
      Core.Runtime.install_fact t ~at:l.l_src
        (Tuple.make "link" [ Value.V_str l.l_src; Value.V_str l.l_dst ]))
    topo.links;
  ignore (Core.Runtime.run t);
  t

let reachable_ac = Tuple.make "reachable" [ Value.V_str "a"; Value.V_str "c" ]

let test_paper_example_provenance () =
  let t = paper_topology_runtime Core.Config.sendlog_prov in
  let e = Core.Runtime.provenance_of t ~at:"a" reachable_ac in
  (* the raw expression is a+a*b up to operand order *)
  Alcotest.(check (list string)) "bases" [ "a"; "b" ] (Provenance.Prov_expr.bases e);
  Alcotest.(check int) "two derivations" 2 (Provenance.Prov_expr.count_derivations e);
  Alcotest.(check string) "condensed to <a>" "<a>"
    (Core.Runtime.condensed_annotation t ~at:"a" reachable_ac)

let test_traceback_matches_local_provenance () =
  let t = paper_topology_runtime Core.Config.sendlog_prov in
  let r = Core.Traceback.query t ~at:"a" reachable_ac in
  (* the reconstructed tree's expression has the same derivability *)
  let local = Core.Runtime.provenance_of t ~at:"a" reachable_ac in
  List.iter
    (fun trusted ->
      let env p = List.mem p trusted in
      Alcotest.(check bool)
        (Printf.sprintf "trust {%s}" (String.concat "," trusted))
        (Provenance.Prov_expr.derivable_from local ~trusted:env)
        (Provenance.Prov_expr.derivable_from r.expr ~trusted:env))
    [ [ "a" ]; [ "b" ]; [ "a"; "b" ]; [] ];
  Alcotest.(check bool) "traceback crossed nodes" true (r.cost.remote_queries > 0)

let test_distributed_mode_stores_pointers_only () =
  let t = paper_topology_runtime { Core.Config.sendlog_prov with prov = Core.Config.Prov_distributed } in
  let st = Core.Runtime.stats t in
  (* no provenance on the wire in distributed mode *)
  Alcotest.(check int) "prov bytes = flag bytes only" st.messages st.bytes_provenance;
  (* but traceback still reconstructs the derivation *)
  let r = Core.Traceback.query t ~at:"a" reachable_ac in
  Alcotest.(check (list string)) "origins" [ "a"; "b" ]
    (List.sort compare (Provenance.Prov_expr.bases r.expr))

let test_offline_store_after_expiry () =
  let topo = Net.Topology.paper_example () in
  let program =
    Ndlog.Parser.parse_program_exn
      ("#ttl reachable 5.\n#ttl link 5.\n" ^ Ndlog.Programs.reachable_src)
  in
  let cfg = { Core.Config.sendlog_prov with rsa_bits; offline_store = true } in
  let t = Core.Runtime.create ~rng:(Crypto.Rng.create ~seed:43) ~cfg ~topo ~program () in
  List.iter
    (fun (l : Net.Topology.link) ->
      Core.Runtime.install_fact t ~at:l.l_src
        (Tuple.make "link" [ Value.V_str l.l_src; Value.V_str l.l_dst ]))
    topo.links;
  ignore (Core.Runtime.run t);
  Alcotest.(check bool) "live before expiry" true
    (Core.Runtime.query_all t "reachable" <> []);
  Core.Runtime.advance t ~seconds:10.0;
  Alcotest.(check (list (pair string string))) "expired" []
    (List.map (fun (a, tu) -> (a, Tuple.to_string tu)) (Core.Runtime.query_all t "reachable"));
  (* offline provenance survives *)
  let storage = Core.Runtime.total_storage t in
  Alcotest.(check bool) "offline records kept" true (storage.st_offline_records > 0);
  let found = Core.Forensics.offline_search t ~rel:"reachable" in
  Alcotest.(check bool) "searchable" true (found <> [])

let test_reactive_ships_nothing () =
  let t =
    paper_topology_runtime { Core.Config.sendlog_prov with maintenance = Core.Config.Reactive }
  in
  let st = Core.Runtime.stats t in
  Alcotest.(check int) "no provenance shipped" st.messages st.bytes_provenance;
  (* pointers still recorded: traceback works on demand *)
  let r = Core.Traceback.query t ~at:"a" reachable_ac in
  Alcotest.(check bool) "reconstructable" true
    (Provenance.Prov_expr.bases r.expr <> [])

let test_sampling_reduces_storage () =
  let storage_at rate =
    let t, _ = mk_runtime ~cfg:{ Core.Config.sendlog_prov with sample_rate = rate } ~n:10 () in
    run_links t;
    (Core.Runtime.total_storage t).st_online_expr_bytes
  in
  let full = storage_at 1.0 and tenth = storage_at 0.1 in
  Alcotest.(check bool)
    (Printf.sprintf "10%% sampling smaller (%d vs %d)" tenth full)
    true
    (tenth < full / 2)

let test_as_granularity () =
  let t, topo = mk_runtime ~cfg:{ Core.Config.sendlog_prov with granularity = Core.Config.As_level } ~n:20 () in
  run_links t;
  ignore topo;
  (* all provenance keys are AS identifiers *)
  let keys =
    List.concat_map
      (fun (at, tu) -> Provenance.Prov_expr.bases (Core.Runtime.provenance_of t ~at tu))
      (Core.Runtime.query_all t "bestPath")
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "keys are ASes" true
    (keys <> [] && List.for_all (fun k -> String.length k >= 3 && String.sub k 0 2 = "as") keys);
  (* AS-level keys are coarser than node-level ones *)
  Alcotest.(check bool) "coarser than nodes" true (List.length keys < 20)

(* --- use cases ------------------------------------------------------------------ *)

let test_diagnostics_alarm_threshold () =
  let topo = Net.Topology.ring ~n:4 () in
  let monitor = Core.Diagnostics.monitor_program ~window_seconds:10.0 ~threshold:3 in
  let cfg = { Core.Config.ndlog with rsa_bits } in
  let t = Core.Runtime.create ~rng:(Crypto.Rng.create ~seed:51) ~cfg ~topo ~program:monitor () in
  for _ = 1 to 3 do
    Core.Diagnostics.report_change t ~node:"n0" ~dest:"d";
    Core.Runtime.advance t ~seconds:1.0
  done;
  Core.Diagnostics.report_change t ~node:"n1" ~dest:"d";
  ignore (Core.Runtime.run t);
  let alarms = Core.Diagnostics.alarms t in
  Alcotest.(check int) "one alarm" 1 (List.length alarms);
  let al = List.hd alarms in
  Alcotest.(check string) "at n0" "n0" al.al_node;
  Alcotest.(check int) "three changes" 3 al.al_changes

let test_diagnostics_window_expires () =
  let topo = Net.Topology.ring ~n:3 () in
  let monitor = Core.Diagnostics.monitor_program ~window_seconds:5.0 ~threshold:2 in
  let cfg = { Core.Config.ndlog with rsa_bits } in
  let t = Core.Runtime.create ~rng:(Crypto.Rng.create ~seed:52) ~cfg ~topo ~program:monitor () in
  Core.Diagnostics.report_change t ~node:"n0" ~dest:"d";
  Core.Runtime.advance t ~seconds:8.0;
  (* first event expired; a second event should not trip threshold 2 *)
  Core.Diagnostics.report_change t ~node:"n0" ~dest:"d";
  ignore (Core.Runtime.run t);
  Alcotest.(check int) "no alarm" 0 (List.length (Core.Diagnostics.alarms t))

let test_purge_suspect () =
  let t, _ = mk_runtime ~cfg:Core.Config.sendlog_prov ~n:6 () in
  run_links t;
  let at = "n0" in
  let deleted = Core.Traceback.purge_suspect t ~at ~suspect:"n2" in
  Alcotest.(check bool) "something deleted" true (deleted <> []);
  (* no remaining tuple at n0 depends on n2 *)
  List.iter
    (fun tu ->
      let e = Core.Runtime.provenance_of t ~at tu in
      Alcotest.(check bool) "clean" false
        (List.mem "n2" (Provenance.Prov_expr.bases e)))
    (Core.Runtime.query t ~at "bestPath")

let test_accountability_ledger () =
  let t, _ = mk_runtime ~cfg:Core.Config.sendlog ~n:6 () in
  let ledger = Core.Accountability.create_ledger () in
  Core.Runtime.set_message_tap t (fun time msg -> Core.Accountability.record ledger ~time msg);
  run_links t;
  let st = Core.Runtime.stats t in
  let usage = Core.Accountability.usage ledger in
  Alcotest.(check int) "ledger covers all bytes" st.bytes_total
    (List.fold_left (fun acc (_, b) -> acc + b) 0 usage);
  Alcotest.(check bool) "every record authenticated" true
    (List.for_all (fun (r : Core.Accountability.flow_record) -> r.fr_authenticated)
       (Core.Accountability.call_detail ledger ~principal:(fst (List.hd usage)) ()));
  (* billing is monotone in usage for a flat rate *)
  let bill = Core.Accountability.bill ledger ~rate:(fun _ -> 1.0) in
  Alcotest.(check (float 0.01)) "flat rate = bytes"
    (float_of_int (snd (List.hd usage)))
    (snd (List.hd bill))

let test_accountability_unattributed () =
  let t, _ = mk_runtime ~cfg:Core.Config.ndlog ~n:4 () in
  let ledger = Core.Accountability.create_ledger () in
  Core.Runtime.set_message_tap t (fun time msg -> Core.Accountability.record ledger ~time msg);
  run_links t;
  Alcotest.(check (list (pair string int))) "no attributed records" []
    (Core.Accountability.usage ledger);
  Alcotest.(check bool) "bytes counted as unattributed" true (ledger.unattributed_bytes > 0)

let test_trust_gate_on_runtime () =
  let t, topo = mk_runtime ~cfg:Core.Config.sendlog_prov ~n:6 () in
  run_links t;
  let at = "n0" in
  let all = Core.Trust_mgmt.create_gate (Trusted_set topo.nodes) in
  let ds = Core.Trust_mgmt.audit_relation all t ~at "bestPath" in
  Alcotest.(check int) "trusting everyone accepts all" (List.length ds)
    (Core.Trust_mgmt.accepted all);
  let none = Core.Trust_mgmt.create_gate (Trusted_set []) in
  let ds2 = Core.Trust_mgmt.audit_relation none t ~at "bestPath" in
  Alcotest.(check int) "trusting no one rejects all" (List.length ds2)
    (Core.Trust_mgmt.rejected none)

let test_forensics_bloom_path_query () =
  let ds = Core.Forensics.create_digests ~epoch_seconds:60.0 ~expected_per_epoch:100 ~fp_rate:0.001 () in
  List.iter
    (fun node -> Core.Forensics.record ds ~node ~time:5.0 "pkt-x")
    [ "r1"; "r2"; "r3" ];
  Core.Forensics.record ds ~node:"r9" ~time:5.0 "other";
  let hits = Core.Forensics.query ds ~time:5.0 "pkt-x" in
  List.iter (fun r -> Alcotest.(check bool) r true (List.mem r hits)) [ "r1"; "r2"; "r3" ];
  (* epoch isolation *)
  Alcotest.(check (list string)) "different epoch empty" []
    (Core.Forensics.query ds ~time:500.0 "pkt-x")

let test_forensics_sampling_recovers_path () =
  let sim =
    Core.Forensics.simulate_traceback (Crypto.Rng.create ~seed:61)
      ~path:[ "a"; "b"; "c" ] ~mark_probability:0.05 ~n_packets:2000
  in
  Alcotest.(check bool) "complete" true sim.ts_complete;
  Alcotest.(check (list string)) "all routers" [ "a"; "b"; "c" ] sim.ts_recovered;
  (* ludicrously low probability with few packets fails *)
  let sim2 =
    Core.Forensics.simulate_traceback (Crypto.Rng.create ~seed:62)
      ~path:[ "a"; "b"; "c" ] ~mark_probability:0.00001 ~n_packets:100
  in
  Alcotest.(check bool) "incomplete" false sim2.ts_complete

let test_forensics_moonwalk_finds_origin () =
  (* star burst: n0 sends to many, which each forward once *)
  let flows =
    List.concat_map
      (fun i ->
        let mid = Printf.sprintf "m%d" i in
        [ { Core.Forensics.fl_src = "origin"; fl_dst = mid; fl_time = 1.0 };
          { Core.Forensics.fl_src = mid; fl_dst = Printf.sprintf "leaf%d" i; fl_time = 2.0 } ])
      (List.init 10 Fun.id)
  in
  match Core.Forensics.random_moonwalk (Crypto.Rng.create ~seed:63) ~flows ~walks:100 ~max_hops:5 with
  | (top, _) :: _ -> Alcotest.(check string) "origin found" "origin" top
  | [] -> Alcotest.fail "no walks"

let test_prov_store_aging () =
  let store = Core.Prov_store.create ~offline_enabled:true () in
  let tu = Tuple.make "p" [ Value.V_int 1 ] in
  Core.Prov_store.record_base store tu ~key:"a";
  Core.Prov_store.retire store tu ~now:10.0;
  Alcotest.(check int) "one offline record" 1 (List.length (Core.Prov_store.offline_records store));
  let dropped = Core.Prov_store.age_offline store ~now:100.0 ~max_age:50.0 () in
  Alcotest.(check int) "aged out" 1 dropped;
  (* persist flag protects marked tuples *)
  let tu2 = Tuple.make "p" [ Value.V_int 2 ] in
  Core.Prov_store.record_base store tu2 ~key:"b";
  Core.Prov_store.retire store tu2 ~now:10.0;
  let dropped2 =
    Core.Prov_store.age_offline store ~now:100.0 ~max_age:50.0 ~persist:(fun _ -> true) ()
  in
  Alcotest.(check int) "persisted" 0 dropped2

(* --- metrics ------------------------------------------------------------------- *)

let fake_points =
  (* a synthetic sweep with the paper's qualitative shape *)
  let mk config n wall mb =
    { Core.Bestpath_workload.p_config = config; p_n = n; p_wall_seconds = wall;
      p_wall_stddev = 0.0; p_sim_seconds = wall; p_sim_stddev = 0.0;
      p_megabytes = mb; p_mb_stddev = 0.0; p_messages = 0; p_signatures = 0;
      p_verif_failures = 0; p_dropped_forged = 0; p_best_paths = 0 }
  in
  [ mk "NDLog" 10 1.0 1.0; mk "SeNDLog" 10 1.6 1.5; mk "SeNDLogProv" 10 2.2 2.3;
    mk "NDLog" 100 10.0 10.0; mk "SeNDLog" 100 14.0 12.0; mk "SeNDLogProv" 100 15.0 13.5 ]

let test_metrics_overheads () =
  (match Core.Metrics.overhead fake_points ~base:"NDLog" ~variant:"SeNDLog" with
  | Some o ->
    Alcotest.(check (float 0.1)) "avg time pct" 50.0 o.ov_avg_time_pct;
    Alcotest.(check (float 0.1)) "at max n" 40.0 o.ov_at_max_n_time_pct;
    Alcotest.(check int) "max n" 100 o.ov_max_n
  | None -> Alcotest.fail "expected overhead");
  Alcotest.(check bool) "missing config" true
    (Core.Metrics.overhead fake_points ~base:"NDLog" ~variant:"Nope" = None)

let test_metrics_shape_checks () =
  Alcotest.(check bool) "ordering holds" true
    (Core.Metrics.ordering_holds fake_points ~metric:(fun p -> p.p_wall_seconds));
  Alcotest.(check bool) "overhead decreases" true
    (Core.Metrics.overhead_decreases fake_points ~base:"NDLog" ~variant:"SeNDLog"
       ~metric:(fun p -> p.p_wall_seconds));
  let table =
    Core.Metrics.figure_table fake_points ~metric:(fun p -> p.p_wall_seconds) ~title:"T"
  in
  Alcotest.(check bool) "table mentions sizes" true
    (String.length table > 0 && String.contains table '1')

(* --- cost model ------------------------------------------------------------------- *)

let test_virtual_clock_monotone_in_costs () =
  (* doubling the per-message cost increases completion time *)
  let run per_message =
    let cfg =
      { Core.Config.ndlog with
        rsa_bits;
        cost_model = { Core.Config.default_cost_model with per_message_seconds = per_message } }
    in
    let t, _ = mk_runtime ~cfg ~n:6 () in
    Core.Runtime.install_links t;
    (Core.Runtime.run t).sim_seconds
  in
  let slow = run 0.02 and fast = run 0.002 in
  Alcotest.(check bool) (Printf.sprintf "%.3f > %.3f" slow fast) true (slow > fast)

(* --- fault injection and reliable delivery ------------------------------- *)

(* The deterministic part of the Best-Path fixpoint: the witness path
   inside bestPath can tie-break differently across orderings, the
   minimum costs cannot. *)
let cost_fixpoint t =
  List.sort_uniq compare
    (List.map
       (fun (at, tu) -> at ^ "|" ^ Tuple.to_string tu)
       (Core.Runtime.query_all t "bestPathCost"))

let faulty_cfg ?(base = Core.Config.ndlog) ?(loss = 0.2) ?(dup = 0.05)
    ?(fault_seed = 99) ?crash ~reliable () =
  let c = Core.Config.with_loss base loss in
  let c = Core.Config.with_dup c dup in
  let c = Core.Config.with_fault_seed c fault_seed in
  let c = match crash with Some cr -> Core.Config.with_crash c cr | None -> c in
  Core.Config.with_reliable c reliable

let test_faulty_runs_reproducible () =
  (* two runs with identical seeds agree on the final fixpoint and on
     the fault layer engaging: per-message verdicts are pinned by the
     fault seed (hashed per message), not by event interleaving *)
  let crash = { Net.Fault.cr_node = "n2"; cr_at = 0.05; cr_restart = Some 0.15 } in
  let measure () =
    let t, _ = mk_runtime ~cfg:(faulty_cfg ~crash ~reliable:true ()) ~n:6 () in
    run_links t;
    let st = Core.Runtime.stats t in
    ( cost_fixpoint t,
      List.length (Core.Runtime.query_all t "bestPath"),
      st.Net.Stats.drops > 0,
      st.Net.Stats.retransmits > 0 )
  in
  let fp1, n1, engaged1, retrans1 = measure () in
  let fp2, n2, engaged2, retrans2 = measure () in
  Alcotest.(check (list string)) "fixpoints identical" fp1 fp2;
  Alcotest.(check int) "bestPath cardinality identical" n1 n2;
  Alcotest.(check bool) "faults engaged both runs" true (engaged1 && engaged2);
  Alcotest.(check bool) "retransmissions both runs" true (retrans1 && retrans2)

let test_reliable_converges_to_fault_free () =
  (* 20% loss, 5% duplication, one mid-run crash-and-restart: with the
     reliable layer on, the distributed fixpoint must be exactly the
     fault-free one *)
  let t0, _ = mk_runtime ~n:6 () in
  run_links t0;
  let baseline = cost_fixpoint t0 in
  let crash = { Net.Fault.cr_node = "n1"; cr_at = 0.05; cr_restart = Some 0.15 } in
  let t, _ = mk_runtime ~cfg:(faulty_cfg ~crash ~reliable:true ()) ~n:6 () in
  run_links t;
  let st = Core.Runtime.stats t in
  Alcotest.(check bool) "losses occurred" true (st.Net.Stats.drops > 0);
  Alcotest.(check bool) "duplicates occurred" true (st.Net.Stats.dups > 0);
  Alcotest.(check bool) "ACKs flowed" true (st.Net.Stats.acks > 0);
  Alcotest.(check int) "no send abandoned" 0 st.Net.Stats.retry_exhausted;
  Alcotest.(check (list string)) "fault-free fixpoint reached" baseline (cost_fixpoint t)

let test_retransmits_reuse_signatures () =
  (* RSA-authenticated run under loss: retransmitted copies carry the
     original signature (signed bytes exclude the sequence number), so
     receivers verify them without any re-signing and without forgery
     drops *)
  let t0, _ = mk_runtime ~cfg:Core.Config.sendlog ~n:5 () in
  run_links t0;
  let baseline = cost_fixpoint t0 in
  let t, _ =
    mk_runtime ~cfg:(faulty_cfg ~base:Core.Config.sendlog ~reliable:true ()) ~n:5 ()
  in
  run_links t;
  let st = Core.Runtime.stats t in
  Alcotest.(check bool) "retransmissions happened" true (st.Net.Stats.retransmits > 0);
  (* every wire message is an original signed send, a signature-reusing
     retransmit, or an unauthenticated ACK: exact accounting shows no
     signature was generated for a retransmitted copy *)
  Alcotest.(check int) "signatures only for original sends" st.Net.Stats.messages
    (st.Net.Stats.signatures_generated + st.Net.Stats.retransmits + st.Net.Stats.acks);
  Alcotest.(check int) "no forged drops" 0 st.Net.Stats.dropped_forged;
  Alcotest.(check int) "no verification failures" 0 st.Net.Stats.verification_failures;
  Alcotest.(check (list string)) "fault-free fixpoint reached" baseline (cost_fixpoint t)

let test_traceback_partial_across_crashed_node () =
  (* node b fails (forever) after the fixpoint completes; tracing
     reachable(a,c) from a crosses b, so the derivation tree degrades
     to an explicit Unreachable stub instead of raising *)
  let topo = Net.Topology.paper_example () in
  let cfg =
    Core.Config.with_crash
      { Core.Config.sendlog_prov with rsa_bits; prov = Core.Config.Prov_distributed }
      { Net.Fault.cr_node = "b"; cr_at = 100.0; cr_restart = None }
  in
  let t =
    Core.Runtime.create ~rng:(Crypto.Rng.create ~seed:41) ~cfg ~topo
      ~program:(Ndlog.Programs.reachable ()) ()
  in
  List.iter
    (fun (l : Net.Topology.link) ->
      Core.Runtime.install_fact t ~at:l.l_src
        (Tuple.make "link" [ Value.V_str l.l_src; Value.V_str l.l_dst ]))
    topo.links;
  ignore (Core.Runtime.run t);
  Alcotest.(check bool) "b is down at query time" true (Core.Runtime.is_node_down t "b");
  Alcotest.(check (float 1e-9)) "crash gauge tracks the outage" 1.0
    (Obs.Metrics.gauge_value (Obs.Metrics.gauge Obs.Metrics.default "sim.crashed_nodes"));
  let r = Core.Traceback.query t ~at:"a" reachable_ac in
  Alcotest.(check bool) "result is partial" true r.partial;
  Alcotest.(check (list string)) "unreachable stub names b" [ "b" ]
    (List.sort_uniq compare (Provenance.Derivation.unreachable_leaves r.tree));
  (* the reachable part of the tree still attributes to a *)
  Alcotest.(check bool) "a still attributed" true
    (List.mem "a" (Provenance.Prov_expr.bases r.expr));
  (* healthy control: the same query without the crash is complete *)
  let t2 =
    paper_topology_runtime
      { Core.Config.sendlog_prov with prov = Core.Config.Prov_distributed }
  in
  let r2 = Core.Traceback.query t2 ~at:"a" reachable_ac in
  Alcotest.(check bool) "complete without crash" false r2.partial;
  Alcotest.(check (list string)) "no stubs without crash" []
    (Provenance.Derivation.unreachable_leaves r2.tree)

(* --- causal tracing, profiler, security events, regression gate ----------- *)

let test_tracing_identical_fixpoint () =
  (* The trace context rides outside the modeled message size, so a
     traced run must produce byte-identical results to an untraced
     one: same virtual timeline, same tie resolution, same fixpoint. *)
  let measure trace =
    let t, _ = mk_runtime ~cfg:Core.Config.sendlog ~n:6 () in
    if trace then ignore (Core.Runtime.enable_tracing t);
    run_links t;
    let r = (cost_fixpoint t, List.length (Core.Runtime.query_all t "bestPath")) in
    Core.Runtime.shutdown t;
    r
  in
  let fp_plain, n_plain = measure false in
  let fp_traced, n_traced = measure true in
  Alcotest.(check (list string)) "fixpoint identical under tracing" fp_plain fp_traced;
  Alcotest.(check int) "bestPath cardinality identical" n_plain n_traced

let test_cross_node_trace_links () =
  let t, _ = mk_runtime ~n:5 () in
  let tr = Core.Runtime.enable_tracing t in
  run_links t;
  let spans = Obs.Trace.finished_spans tr in
  let handles = List.filter (fun s -> s.Obs.Trace.sp_name = "handle") spans in
  Alcotest.(check bool) "handle spans recorded" true (handles <> []);
  let by_id = Hashtbl.create 1024 in
  List.iter (fun s -> Hashtbl.replace by_id s.Obs.Trace.sp_id s) spans;
  let node_of s = List.assoc_opt "node" s.Obs.Trace.sp_attrs in
  (* The tentpole property: receive handlers parent under the *sending*
     node's span, so the trace stitches the causal chain across nodes. *)
  let cross_node =
    List.filter
      (fun s ->
        match s.Obs.Trace.sp_parent with
        | Some p -> (
          match Hashtbl.find_opt by_id p with
          | Some parent -> node_of parent <> None && node_of parent <> node_of s
          | None -> false)
        | None -> false)
      handles
  in
  Alcotest.(check bool) "cross-node parent links present" true (cross_node <> []);
  (* ...and the Chrome export draws one flow arrow per cross-*track*
     link (a track per node, plus the unattributed run lane). *)
  let cross_track =
    List.filter
      (fun s ->
        match s.Obs.Trace.sp_parent with
        | Some p -> (
          match Hashtbl.find_opt by_id p with
          | Some parent -> node_of parent <> node_of s
          | None -> false)
        | None -> false)
      spans
  in
  let j = Obs.Json.parse (Obs.Export.chrome_trace tr) in
  (match Obs.Json.member "traceEvents" j with
  | Some (Obs.Json.List events) ->
    let count ph =
      List.length
        (List.filter
           (fun e -> Option.bind (Obs.Json.member "ph" e) Obs.Json.to_string_opt = Some ph)
           events)
    in
    Alcotest.(check int) "one flow pair per cross-track link"
      (List.length cross_track) (count "s");
    Alcotest.(check int) "flow starts match finishes" (count "s") (count "f")
  | _ -> Alcotest.fail "chrome export has no traceEvents")

let test_traced_parallel_engine () =
  (* The tracer is shared by the batch engine's worker domains; a
     jobs=4 traced run must complete, record spans, and agree with the
     sequential fixpoint. *)
  let t0, _ = mk_runtime ~n:6 () in
  run_links t0;
  let baseline = cost_fixpoint t0 in
  let t, _ = mk_runtime ~cfg:(Core.Config.with_jobs Core.Config.ndlog 4) ~n:6 () in
  let tr = Core.Runtime.enable_tracing t in
  run_links t;
  Alcotest.(check (list string)) "parallel traced fixpoint matches" baseline
    (cost_fixpoint t);
  Alcotest.(check bool) "spans recorded under jobs=4" true
    (Obs.Trace.finished_spans tr <> []);
  Core.Runtime.shutdown t

let test_per_rule_profiler_series () =
  Obs.Metrics.reset Obs.Metrics.default;
  let t, _ = mk_runtime ~n:6 () in
  run_links t;
  (* The evaluator flushes per-rule time/rounds/derivations as labeled
     series; every rule of the Best-Path program must show up with
     rounds > 0, and rule seconds must be recorded as histograms. *)
  let j = Obs.Metrics.to_json Obs.Metrics.default in
  let metrics =
    match Obs.Json.member "metrics" j with Some (Obs.Json.List l) -> l | _ -> []
  in
  let named name =
    List.filter
      (fun m -> Option.bind (Obs.Json.member "name" m) Obs.Json.to_string_opt = Some name)
      metrics
  in
  let rounds = named "eval.rule_rounds" in
  Alcotest.(check bool) "per-rule rounds series exist" true (rounds <> []);
  List.iter
    (fun m ->
      match Option.bind (Obs.Json.member "labels" m) (Obs.Json.member "rule") with
      | Some (Obs.Json.Str _) -> ()
      | _ -> Alcotest.fail "rule series missing rule label")
    rounds;
  (* The registry keeps zeroed series from other tests' programs after
     a reset, so require positive counts to *exist*, not universally. *)
  Alcotest.(check bool) "this run's rules have positive rounds" true
    (List.exists
       (fun m ->
         match Option.bind (Obs.Json.member "value" m) Obs.Json.to_int_opt with
         | Some v -> v > 0
         | None -> false)
       rounds);
  let seconds = named "eval.rule_seconds" in
  Alcotest.(check bool) "per-rule seconds histograms exist" true (seconds <> []);
  Alcotest.(check bool) "derivations attributed to rules" true
    (named "eval.rule_derivations" <> [])

let test_security_events_emitted () =
  (* Forged traffic: the event log must carry failed sig_verified and
     forged_dropped entries naming the receiving node. *)
  let topo = Net.Topology.line ~n:3 () in
  let directory =
    Sendlog.Principal.directory_for (Crypto.Rng.create ~seed:31) ~rsa_bits topo.nodes
  in
  let t =
    Core.Runtime.create ~directory ~rng:(Crypto.Rng.create ~seed:32)
      ~cfg:{ Core.Config.sendlog with rsa_bits } ~topo
      ~program:(Ndlog.Programs.best_path ()) ()
  in
  let rogue = Sendlog.Principal.create (Crypto.Rng.create ~seed:33) ~name:"n1" ~rsa_bits () in
  Core.Runtime.replace_principal t ~at:"n1" rogue;
  run_links t;
  let events = List.map (fun e -> e.Obs.Events.en_event) (Obs.Events.to_list (Core.Runtime.event_log t)) in
  Alcotest.(check bool) "forged_dropped emitted" true
    (List.exists (function Obs.Events.E_forged_dropped _ -> true | _ -> false) events);
  Alcotest.(check bool) "failed sig_verified emitted" true
    (List.exists
       (function Obs.Events.E_sig_verified { ok = false; _ } -> true | _ -> false)
       events)

let test_retry_exhausted_event () =
  (* Total loss with a tiny retry budget: reliable delivery gives up
     and must say so in the event log, not just in a counter. *)
  let cfg =
    Core.Config.with_retry (faulty_cfg ~loss:1.0 ~dup:0.0 ~reliable:true ()) ~limit:2
      ~ack_timeout:0.05 ()
  in
  let t, _ = mk_runtime ~cfg ~n:4 () in
  run_links t;
  let st = Core.Runtime.stats t in
  Alcotest.(check bool) "sends abandoned" true (st.Net.Stats.retry_exhausted > 0);
  let exhausted =
    List.filter
      (fun e ->
        match e.Obs.Events.en_event with
        | Obs.Events.E_custom { kind = "retry_exhausted"; _ } -> true
        | _ -> false)
      (Obs.Events.to_list (Core.Runtime.event_log t))
  in
  Alcotest.(check bool) "retry_exhausted events emitted" true (exhausted <> []);
  List.iter
    (fun e ->
      match e.Obs.Events.en_event with
      | Obs.Events.E_custom { attrs; _ } ->
        Alcotest.(check bool) "reason attribute present" true
          (List.mem_assoc "reason" attrs && List.mem_assoc "dst" attrs)
      | _ -> ())
    exhausted

let test_critical_path_semantics () =
  let open Provenance.Derivation in
  let leaf created tuple = Leaf { tuple; ann = annot ~created "a" } in
  let fast = leaf 1.0 "fast" in
  let slow = leaf 5.0 "slow" in
  let rule =
    Rule { rule = "r"; tuple = "out"; ann = annot ~created:2.0 "a";
           children = [ fast; slow ] }
  in
  (* A rule completes at its slowest input; the path goes through it. *)
  Alcotest.(check (float 1e-9)) "rule completion = slowest child" 5.0 (completion rule);
  (match critical_path rule with
  | [ r; s ] ->
    Alcotest.(check bool) "path starts at root" true (r == rule);
    Alcotest.(check bool) "path ends at slow leaf" true (s == slow)
  | p -> Alcotest.failf "expected 2-node path, got %d" (List.length p));
  (* A union completes at its *earliest* alternative. *)
  let alt = leaf 0.5 "alt" in
  let union = Union { tuple = "out"; alternatives = [ rule; alt ] } in
  Alcotest.(check (float 1e-9)) "union completion = earliest alternative" 0.5
    (completion union);
  (match critical_path union with
  | [ u; a ] ->
    Alcotest.(check bool) "union root" true (u == union);
    Alcotest.(check bool) "earliest alternative chosen" true (a == alt)
  | p -> Alcotest.failf "expected 2-node union path, got %d" (List.length p));
  (* Unreachable stubs never inflate the path. *)
  let stub = Unreachable { tuple = "x"; location = "b" } in
  Alcotest.(check (float 1e-9)) "stub contributes nothing" 0.0 (completion stub);
  (* Rendering marks the path and stamps every node. *)
  let s = to_latency_string union in
  Alcotest.(check bool) "latency tree marks the path" true
    (String.length s > 0 && String.contains s '*');
  Alcotest.(check bool) "latency tree stamps times" true
    (let needle = "t=5.000000" in
     let nl = String.length needle and tl = String.length s in
     let rec go i = i + nl <= tl && (String.sub s i nl = needle || go (i + 1)) in
     go 0)

let test_traceback_latency_view () =
  (* End to end: a real traceback's tree carries virtual-clock stamps,
     so it has a positive completion time and a non-empty critical
     path ending in the latency rendering. *)
  let t = paper_topology_runtime Core.Config.sendlog_prov in
  let r = Core.Traceback.query t ~at:"a" reachable_ac in
  (* reachable(a,c) also derives locally from link(a,c) at t=0, and a
     union completes at its earliest alternative — so the completion
     time is 0.0 here; what must hold is that it is finite and the
     path/rendering are well-formed. *)
  Alcotest.(check bool) "completion time finite and non-negative" true
    (let ct = Core.Traceback.completion_time r in
     Float.is_finite ct && ct >= 0.0);
  Alcotest.(check bool) "critical path non-empty" true
    (Core.Traceback.critical_path r <> []);
  let s = Core.Traceback.latency_tree r in
  Alcotest.(check bool) "latency tree renders" true (String.length s > 0);
  (* The transitive alternative (via b) did wait on the network: some
     node of the tree completes strictly later than the union root. *)
  let rec max_completion d =
    let open Provenance.Derivation in
    match d with
    | Leaf { ann; _ } -> ann.a_created
    | Rule { ann; children; _ } ->
      List.fold_left (fun acc c -> Float.max acc (max_completion c)) ann.a_created children
    | Union { alternatives; _ } ->
      List.fold_left (fun acc c -> Float.max acc (max_completion c)) 0.0 alternatives
    | Unreachable _ -> 0.0
  in
  Alcotest.(check bool) "a later alternative exists in the tree" true
    (max_completion r.Core.Traceback.tree > Core.Traceback.completion_time r)

let test_compare_bench_gate () =
  let doc ?(cal = 1000.0) ~wall ~speedup ~best () =
    Obs.Json.Obj
      [ ("calibration_ops_per_sec", Obs.Json.Float cal);
        ( "index_ablation",
          Obs.Json.Obj
            [ ("scan_wall_seconds", Obs.Json.Float wall);
              ("speedup", Obs.Json.Float speedup);
              ("best_paths", Obs.Json.Int best) ] ) ]
  in
  let base = doc ~wall:10.0 ~speedup:2.0 ~best:100 () in
  Alcotest.(check (list string)) "identical documents pass" []
    (Core.Metrics.compare_bench ~baseline:base ~current:base);
  Alcotest.(check bool) "+20% wall regression flagged" true
    (Core.Metrics.compare_bench ~baseline:base
       ~current:(doc ~wall:12.0 ~speedup:2.0 ~best:100 ())
    <> []);
  Alcotest.(check (list string)) "+10% wall inside threshold" []
    (Core.Metrics.compare_bench ~baseline:base
       ~current:(doc ~wall:11.0 ~speedup:2.0 ~best:100 ()));
  Alcotest.(check bool) "speedup collapse flagged" true
    (Core.Metrics.compare_bench ~baseline:base
       ~current:(doc ~wall:10.0 ~speedup:1.2 ~best:100 ())
    <> []);
  Alcotest.(check bool) "fixpoint size change flagged" true
    (Core.Metrics.compare_bench ~baseline:base
       ~current:(doc ~wall:10.0 ~speedup:2.0 ~best:99 ())
    <> []);
  (* Calibration normalization: a machine measured half as fast with
     walls twice as long is the same code — no regression. *)
  Alcotest.(check (list string)) "slow machine normalized away" []
    (Core.Metrics.compare_bench ~baseline:base
       ~current:(doc ~cal:500.0 ~wall:20.0 ~speedup:2.0 ~best:100 ()));
  (* ...and without the calibration credit the same walls would fail. *)
  Alcotest.(check bool) "unnormalized doubling would fail" true
    (Core.Metrics.compare_bench ~baseline:base
       ~current:(doc ~wall:20.0 ~speedup:2.0 ~best:100 ())
    <> [])

let suite : unit Alcotest.test_case list =
  [ Alcotest.test_case "distributed NDlog = dijkstra" `Quick test_distributed_ndlog_correct;
    Alcotest.test_case "distributed SeNDlog = dijkstra" `Quick test_distributed_sendlog_correct;
    Alcotest.test_case "distributed SeNDlogProv = dijkstra" `Quick test_distributed_sendlogprov_correct;
    Alcotest.test_case "says-program variant" `Quick test_sendlog_program_variant;
    Alcotest.test_case "three configs agree" `Quick test_three_configs_agree;
    Alcotest.test_case "forged messages dropped" `Quick test_forged_messages_dropped;
    Alcotest.test_case "forged messages dropped (batched verify)" `Quick
      test_forged_messages_dropped_batched;
    Alcotest.test_case "paper example provenance" `Quick test_paper_example_provenance;
    Alcotest.test_case "traceback = local provenance" `Quick test_traceback_matches_local_provenance;
    Alcotest.test_case "distributed mode: pointers only" `Quick test_distributed_mode_stores_pointers_only;
    Alcotest.test_case "offline store after expiry" `Quick test_offline_store_after_expiry;
    Alcotest.test_case "reactive ships nothing" `Quick test_reactive_ships_nothing;
    Alcotest.test_case "sampling reduces storage" `Quick test_sampling_reduces_storage;
    Alcotest.test_case "AS granularity" `Quick test_as_granularity;
    Alcotest.test_case "diagnostics alarm" `Quick test_diagnostics_alarm_threshold;
    Alcotest.test_case "diagnostics window expiry" `Quick test_diagnostics_window_expires;
    Alcotest.test_case "purge suspect" `Quick test_purge_suspect;
    Alcotest.test_case "accountability ledger" `Quick test_accountability_ledger;
    Alcotest.test_case "accountability unattributed" `Quick test_accountability_unattributed;
    Alcotest.test_case "trust gate" `Quick test_trust_gate_on_runtime;
    Alcotest.test_case "forensics bloom query" `Quick test_forensics_bloom_path_query;
    Alcotest.test_case "forensics sampling" `Quick test_forensics_sampling_recovers_path;
    Alcotest.test_case "forensics moonwalk" `Quick test_forensics_moonwalk_finds_origin;
    Alcotest.test_case "prov store aging" `Quick test_prov_store_aging;
    Alcotest.test_case "metrics overheads" `Quick test_metrics_overheads;
    Alcotest.test_case "metrics shape checks" `Quick test_metrics_shape_checks;
    Alcotest.test_case "virtual clock monotone" `Quick test_virtual_clock_monotone_in_costs;
    Alcotest.test_case "faulty runs reproducible" `Quick test_faulty_runs_reproducible;
    Alcotest.test_case "reliable delivery converges under faults" `Quick
      test_reliable_converges_to_fault_free;
    Alcotest.test_case "retransmits reuse signatures" `Quick test_retransmits_reuse_signatures;
    Alcotest.test_case "traceback partial across crashed node" `Quick
      test_traceback_partial_across_crashed_node;
    Alcotest.test_case "tracing leaves fixpoint identical" `Quick
      test_tracing_identical_fixpoint;
    Alcotest.test_case "cross-node trace links" `Quick test_cross_node_trace_links;
    Alcotest.test_case "traced parallel engine" `Quick test_traced_parallel_engine;
    Alcotest.test_case "per-rule profiler series" `Quick test_per_rule_profiler_series;
    Alcotest.test_case "security events emitted" `Quick test_security_events_emitted;
    Alcotest.test_case "retry-exhausted event" `Quick test_retry_exhausted_event;
    Alcotest.test_case "critical path semantics" `Quick test_critical_path_semantics;
    Alcotest.test_case "traceback latency view" `Quick test_traceback_latency_view;
    Alcotest.test_case "bench compare gate" `Quick test_compare_bench_gate ]

(* --- Chord (paper's future work) -------------------------------------------- *)

let test_chord_ring_construction () =
  let ring = Core.Chord.build_ring ~m:10 [ "a"; "b"; "c"; "d" ] in
  Alcotest.(check int) "four members" 4 (List.length ring.members);
  (* members sorted, ids distinct and in range *)
  let ids = List.map snd ring.members in
  Alcotest.(check (list int)) "sorted" (List.sort compare ids) ids;
  Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id -> Alcotest.(check bool) "in range" true (id >= 0 && id < 1024))
    ids;
  (* successor wraps around the ring *)
  let last_addr, _ = List.nth ring.members 3 in
  let succ_addr, _ = Core.Chord.member_successor ring last_addr in
  Alcotest.(check string) "wraparound" (fst (List.hd ring.members)) succ_addr

let test_chord_true_owner () =
  let ring = Core.Chord.build_ring ~m:8 [ "x"; "y"; "z" ] in
  (* every key's owner is the first member with id >= key (or wrap) *)
  for k = 0 to 255 do
    let owner = Core.Chord.true_owner ring k in
    let expected =
      match List.find_opt (fun (_, id) -> id >= k) ring.members with
      | Some (a, _) -> a
      | None -> fst (List.hd ring.members)
    in
    if owner <> expected then
      Alcotest.failf "key %d: owner %s expected %s" k owner expected
  done

let test_chord_lookups_resolve () =
  let n = 12 in
  let topo = Net.Topology.random (Crypto.Rng.create ~seed:71) ~n () in
  let ring = Core.Chord.build_ring ~m:10 topo.nodes in
  let cfg = { Core.Config.sendlog_prov with rsa_bits } in
  let t =
    Core.Runtime.create ~rng:(Crypto.Rng.create ~seed:72) ~cfg ~topo
      ~program:(Ndlog.Programs.chord ()) ()
  in
  Core.Chord.install_ring t ring;
  ignore (Core.Runtime.run t);
  let rng = Crypto.Rng.create ~seed:73 in
  let keys = List.init 15 (fun _ -> Crypto.Rng.int rng ring.modulus) in
  List.iter (fun k -> Core.Chord.issue_lookup t ~from:"n3" ~key:k) keys;
  ignore (Core.Runtime.run t);
  let results = Core.Chord.results t ~requester:"n3" in
  Alcotest.(check int) "all resolved" (List.length (List.sort_uniq compare keys))
    (List.length results);
  List.iter
    (fun (r : Core.Chord.lookup_result) ->
      Alcotest.(check string)
        (Printf.sprintf "key %d owner" r.lr_key)
        (Core.Chord.true_owner ring r.lr_key)
        r.lr_owner;
      Alcotest.(check bool) "path starts at requester" true
        (List.hd r.lr_path = "n3"))
    results

let test_chord_provenance_names_path () =
  let topo = Net.Topology.random (Crypto.Rng.create ~seed:74) ~n:10 () in
  let ring = Core.Chord.build_ring ~m:10 topo.nodes in
  let cfg = { Core.Config.sendlog_prov with rsa_bits } in
  let t =
    Core.Runtime.create ~rng:(Crypto.Rng.create ~seed:75) ~cfg ~topo
      ~program:(Ndlog.Programs.chord ()) ()
  in
  Core.Chord.install_ring t ring;
  ignore (Core.Runtime.run t);
  Core.Chord.issue_lookup t ~from:"n0" ~key:(ring.modulus / 2);
  ignore (Core.Runtime.run t);
  match Core.Runtime.query t ~at:"n0" "lookupResult" with
  | [] -> Alcotest.fail "no lookup result"
  | tuple :: _ ->
    let bases =
      Provenance.Prov_expr.bases (Core.Runtime.provenance_of t ~at:"n0" tuple)
    in
    (* the provenance keys are exactly nodes of the topology, and
       include the hop(s) the path took *)
    Alcotest.(check bool) "non-empty" true (bases <> []);
    List.iter
      (fun b -> Alcotest.(check bool) ("node " ^ b) true (List.mem b topo.nodes))
      bases

let chord_suite =
  [ Alcotest.test_case "chord ring construction" `Quick test_chord_ring_construction;
    Alcotest.test_case "chord true owner" `Quick test_chord_true_owner;
    Alcotest.test_case "chord lookups resolve" `Quick test_chord_lookups_resolve;
    Alcotest.test_case "chord provenance = path" `Quick test_chord_provenance_names_path ]

let suite = suite @ chord_suite

(* --- incremental maintenance (DRed) under churn and expiry --------------- *)

(* [advance ~seconds] is a bounded horizon, not "drain the queue":
   events scheduled beyond it must stay queued (regression: advance
   used to call [Event_sim.run] with no [~until]). *)
let test_advance_bounded_horizon () =
  let t, _ = mk_runtime ~cfg:Core.Config.ndlog ~n:4 () in
  run_links t;
  let fired = ref false in
  Net.Event_sim.schedule (Core.Runtime.sim t) ~delay:1000.0 (fun () -> fired := true);
  let before = Net.Event_sim.now (Core.Runtime.sim t) in
  Core.Runtime.advance t ~seconds:1.0;
  Alcotest.(check bool) "far-future event not executed" false !fired;
  Alcotest.(check (float 1e-9)) "clock advanced exactly" (before +. 1.0)
    (Net.Event_sim.now (Core.Runtime.sim t));
  Core.Runtime.advance t ~seconds:2000.0;
  Alcotest.(check bool) "event runs once inside the horizon" true !fired

(* The acceptance criterion: after a link retraction, the queried
   fixpoint AND its provenance are byte-identical to a from-scratch
   fixpoint over the mutated topology. *)
let test_link_retraction_matches_scratch () =
  let seed = 31 in
  let topo = Net.Topology.random (Crypto.Rng.create ~seed) ~n:8 () in
  let cfg = { Core.Config.sendlog_prov with Core.Config.rsa_bits } in
  let directory = Core.Bestpath_workload.shared_directory ~rsa_bits topo.Net.Topology.nodes in
  let t =
    Core.Runtime.create ~directory ~rng:(Crypto.Rng.create ~seed:(seed + 1)) ~cfg ~topo
      ~program:(Ndlog.Programs.best_path ()) ()
  in
  Core.Runtime.install_links t;
  ignore (Core.Runtime.run t);
  let l = List.hd topo.Net.Topology.links in
  Core.Runtime.link_down t ~src:l.Net.Topology.l_src ~dst:l.Net.Topology.l_dst;
  ignore (Core.Runtime.run t);
  Alcotest.(check bool) "retraction pass deleted something" true
    (Core.Runtime.tuples_retracted t > 0);
  let topo2 =
    Net.Topology.remove_link topo ~src:l.Net.Topology.l_src ~dst:l.Net.Topology.l_dst
  in
  let t2 =
    Core.Runtime.create ~directory ~rng:(Crypto.Rng.create ~seed:(seed + 1)) ~cfg
      ~topo:topo2 ~program:(Ndlog.Programs.best_path ()) ()
  in
  Core.Runtime.install_links t2;
  ignore (Core.Runtime.run t2);
  Alcotest.(check bool) "fixpoint byte-identical to scratch" true
    (Core.Bestpath_workload.fixpoint_snapshot t "bestPath"
    = Core.Bestpath_workload.fixpoint_snapshot t2 "bestPath");
  Alcotest.(check bool) "provenance byte-identical to scratch" true
    (Core.Bestpath_workload.prov_snapshot t "bestPath"
    = Core.Bestpath_workload.prov_snapshot t2 "bestPath")

(* Same criterion for soft-state expiry: a TTL'd base relation expires
   under [advance], its dependents are incrementally retracted, and
   the surviving fixpoint (and provenance) equals a from-scratch run
   that never saw the expired facts. *)
let test_ttl_expiry_matches_scratch () =
  let topo = Net.Topology.paper_example () in
  let src =
    "#ttl templink 5.\n\
     sp1 reachable(@S,D) :- link(@S,D).\n\
     sp2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).\n\
     tp1 reachable(@S,D) :- templink(@S,D).\n"
  in
  let program = Ndlog.Parser.parse_program_exn src in
  let cfg = { Core.Config.sendlog_prov with Core.Config.rsa_bits } in
  let mk () =
    Core.Runtime.create ~rng:(Crypto.Rng.create ~seed:91) ~cfg ~topo ~program ()
  in
  let install_links t =
    List.iter
      (fun (l : Net.Topology.link) ->
        Core.Runtime.install_fact t ~at:l.l_src
          (Tuple.make "link" [ Value.V_str l.l_src; Value.V_str l.l_dst ]))
      topo.links
  in
  let t = mk () in
  install_links t;
  (* an extra soft-state edge c->a that closes a cycle *)
  Core.Runtime.install_fact t ~at:"c"
    (Tuple.make "templink" [ Value.V_str "c"; Value.V_str "a" ]);
  ignore (Core.Runtime.run t);
  let with_temp = Core.Bestpath_workload.fixpoint_snapshot t "reachable" in
  Core.Runtime.advance t ~seconds:10.0;
  ignore (Core.Runtime.run t);
  let t2 = mk () in
  install_links t2;
  ignore (Core.Runtime.run t2);
  let scratch = Core.Bestpath_workload.fixpoint_snapshot t2 "reachable" in
  Alcotest.(check bool) "templink widened the fixpoint" true (with_temp <> scratch);
  Alcotest.(check bool) "post-expiry fixpoint = scratch" true
    (Core.Bestpath_workload.fixpoint_snapshot t "reachable" = scratch);
  Alcotest.(check bool) "post-expiry provenance = scratch" true
    (Core.Bestpath_workload.prov_snapshot t "reachable"
    = Core.Bestpath_workload.prov_snapshot t2 "reachable")

(* Satellite: a keyed replacement ([Db.insert] returning [Replaced])
   must retire the incumbent's provenance to the offline store — the
   history of the displaced value is forensic state, not garbage. *)
let test_replaced_incumbent_retired_offline () =
  let cfg =
    { Core.Config.sendlog_prov with Core.Config.rsa_bits; offline_store = true }
  in
  let t, _ = mk_runtime ~cfg ~n:8 () in
  run_links t;
  (* Best-Path over a random topology replaces incumbents as better
     costs arrive; no TTL ever fires, so every offline record here
     comes from replacement (or the retraction passes it triggers). *)
  let storage = Core.Runtime.total_storage t in
  Alcotest.(check bool) "replaced incumbents retired offline" true
    (storage.st_offline_records > 0)

(* Link churn under the batch engine: a sequential and a --jobs 4 run
   over the same flap schedule must agree tuple-for-tuple and
   byte-for-byte on provenance, with both matching from-scratch. *)
let test_seq_vs_par_churn_identical () =
  let run jobs =
    let cfg =
      Core.Config.with_jobs
        { Core.Config.sendlog_prov with Core.Config.rsa_bits }
        jobs
    in
    Core.Bestpath_workload.run_churn ~cfg ~n:8 ~rate:0.4 ~horizon:3.0 ()
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check bool) "seq matches scratch (fixpoint+prov)" true
    (seq.Core.Bestpath_workload.c_fixpoint_match
    && seq.Core.Bestpath_workload.c_prov_match);
  Alcotest.(check bool) "par matches scratch (fixpoint+prov)" true
    (par.Core.Bestpath_workload.c_fixpoint_match
    && par.Core.Bestpath_workload.c_prov_match);
  Alcotest.(check int) "same flap schedule" seq.Core.Bestpath_workload.c_flaps
    par.Core.Bestpath_workload.c_flaps

(* The flap process is a pure function of --fault-seed. *)
let test_flap_schedule_deterministic () =
  let schedule fault_seed =
    let cfg =
      Core.Config.with_fault_seed { Core.Config.ndlog with Core.Config.rsa_bits }
        fault_seed
    in
    let t, _ = mk_runtime ~cfg ~n:6 () in
    run_links t;
    let flaps = Core.Runtime.schedule_flaps t ~rate:0.5 ~horizon:4.0 () in
    List.map
      (fun (f : Net.Fault.flap) -> (f.fl_src, f.fl_dst, f.fl_at, f.fl_down))
      flaps
  in
  Alcotest.(check bool) "same seed, same flaps" true (schedule 7 = schedule 7);
  Alcotest.(check bool) "different seed, different flaps" true
    (schedule 7 <> schedule 8)

(* Chord under member churn: stale lookup results routed through
   departed members (or through fingers the reassignment shifted) are
   withdrawn and re-derived; exactly one result per key survives, and
   every owner is correct for the final ring. *)
let test_chord_churn_no_stale_results () =
  let n = 12 in
  let topo = Net.Topology.random (Crypto.Rng.create ~seed:81) ~n () in
  let ring0 = Core.Chord.build_ring ~m:10 topo.nodes in
  let cfg = { Core.Config.sendlog_prov with Core.Config.rsa_bits } in
  let t =
    Core.Runtime.create ~rng:(Crypto.Rng.create ~seed:82) ~cfg ~topo
      ~program:(Ndlog.Programs.chord ()) ()
  in
  Core.Chord.install_ring t ring0;
  ignore (Core.Runtime.run t);
  let rng = Crypto.Rng.create ~seed:83 in
  let keys =
    List.sort_uniq compare (List.init 8 (fun _ -> Crypto.Rng.int rng ring0.modulus))
  in
  List.iter (fun k -> Core.Chord.issue_lookup t ~from:"n0" ~key:k) keys;
  ignore (Core.Runtime.run t);
  (* one member leaves, another joins back after *)
  let leaver = List.find (fun a -> a <> "n0") topo.nodes in
  let ring1 =
    Core.Chord.build_ring ~m:10 (List.filter (fun a -> a <> leaver) topo.nodes)
  in
  Core.Chord.apply_ring_change t ~before:ring0 ~after:ring1;
  ignore (Core.Runtime.run t);
  let ring2 = Core.Chord.build_ring ~m:10 topo.nodes in
  Core.Chord.apply_ring_change t ~before:ring1 ~after:ring2;
  ignore (Core.Runtime.run t);
  let results = Core.Chord.results t ~requester:"n0" in
  Alcotest.(check int) "exactly one result per key (no stale survivors)"
    (List.length keys) (List.length results);
  List.iter
    (fun (r : Core.Chord.lookup_result) ->
      Alcotest.(check string)
        (Printf.sprintf "key %d owner correct for final ring" r.lr_key)
        (Core.Chord.true_owner ring2 r.lr_key)
        r.lr_owner)
    results;
  Alcotest.(check bool) "churn exercised the retraction pass" true
    (Core.Runtime.tuples_retracted t > 0)

let churn_suite =
  [ Alcotest.test_case "advance bounded horizon" `Quick test_advance_bounded_horizon;
    Alcotest.test_case "link retraction = scratch" `Quick
      test_link_retraction_matches_scratch;
    Alcotest.test_case "ttl expiry = scratch" `Quick test_ttl_expiry_matches_scratch;
    Alcotest.test_case "replaced incumbent retired offline" `Quick
      test_replaced_incumbent_retired_offline;
    Alcotest.test_case "seq vs par churn identical" `Quick
      test_seq_vs_par_churn_identical;
    Alcotest.test_case "flap schedule deterministic" `Quick
      test_flap_schedule_deterministic;
    Alcotest.test_case "chord churn: no stale results" `Quick
      test_chord_churn_no_stale_results ]

let suite = suite @ churn_suite

(* --- distributed reachability property -------------------------------------- *)

(* Distributed evaluation over random topologies matches the
   transitive closure of the link graph, with cheap cleartext auth so
   the property can run many cases. *)
let prop_distributed_reachable =
  QCheck.Test.make ~name:"distributed reachable = closure" ~count:10
    (QCheck.make QCheck.Gen.(int_range 4 9))
    (fun n ->
      let topo = Net.Topology.random (Crypto.Rng.create ~seed:(1000 + n)) ~n () in
      let cfg = { Core.Config.default with auth = Sendlog.Auth.Auth_cleartext } in
      let t =
        Core.Runtime.create ~rng:(Crypto.Rng.create ~seed:2) ~cfg ~topo
          ~program:(Ndlog.Programs.reachable ()) ()
      in
      List.iter
        (fun (l : Net.Topology.link) ->
          Core.Runtime.install_fact t ~at:l.l_src
            (Tuple.make "link" [ Value.V_str l.l_src; Value.V_str l.l_dst ]))
        topo.links;
      ignore (Core.Runtime.run t);
      (* reference closure *)
      let reach = Hashtbl.create 64 in
      List.iter (fun (l : Net.Topology.link) -> Hashtbl.replace reach (l.l_src, l.l_dst) ()) topo.links;
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                List.iter
                  (fun c ->
                    if Hashtbl.mem reach (a, b) && Hashtbl.mem reach (b, c)
                       && not (Hashtbl.mem reach (a, c)) then begin
                      Hashtbl.replace reach (a, c) ();
                      changed := true
                    end)
                  topo.nodes)
              topo.nodes)
          topo.nodes
      done;
      let expected =
        Hashtbl.fold (fun (a, b) () acc -> Printf.sprintf "%s>%s" a b :: acc) reach []
        |> List.sort compare
      in
      let got =
        List.map
          (fun (_, tu) ->
            Printf.sprintf "%s>%s"
              (Value.to_addr (Tuple.arg tu 0))
              (Value.to_addr (Tuple.arg tu 1)))
          (Core.Runtime.query_all t "reachable")
        |> List.sort compare
      in
      got = expected)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_distributed_reachable ]
