(* Sharded conservative simulator (DESIGN.md Section 11): the
   acceptance bar is byte-identity — for any shard count K the
   distributed fixpoint, the AC-canonical provenance of every tuple
   and the bestPath set must equal the sequential (K=1) run's, because
   cross-shard deliveries are exchanged at conservative lookahead
   barriers in a deterministic (timestamp, source shard, send order)
   merge.  Also covers the windowed-drain primitive the shards are
   built on, the zero-lookahead degenerate case, and the AS-level
   provenance granularity cut. *)

let rsa_bits = 384

(* One full Best-Path run at a given shard count. *)
let run_with ?directory ?(cfg = Core.Config.ndlog) ?(seed = 7) ?(n = 40)
    ~(shards : int) () : Core.Runtime.t =
  let topo = Net.Topology.random (Crypto.Rng.create ~seed) ~n () in
  let cfg = Core.Config.with_shards { cfg with Core.Config.rsa_bits } shards in
  let t =
    Core.Runtime.create ?directory
      ~rng:(Crypto.Rng.create ~seed:(seed + 1))
      ~cfg ~topo
      ~program:(Ndlog.Programs.best_path ())
      ()
  in
  Core.Runtime.install_links t;
  ignore (Core.Runtime.run t);
  t

(* Snapshots rendered as sorted strings so Alcotest diffs name the
   first diverging tuple instead of printing "false". *)
let fixpoint_lines t =
  List.map
    (fun (addr, ident) -> addr ^ "|" ^ ident)
    (Core.Bestpath_workload.fixpoint_snapshot t "bestPath")

let prov_lines t =
  List.map
    (fun ((addr, ident), expr) -> addr ^ "|" ^ ident ^ "|" ^ expr)
    (Core.Bestpath_workload.prov_snapshot t "bestPath")

(* --- shard partitioning ------------------------------------------------- *)

let test_shard_count_follows_config () =
  (* N=40 random topology spans 4 ASes; [--shards 0] means one shard
     per AS, an explicit K is clamped to the node count *)
  let count shards = Core.Runtime.shard_count (run_with ~n:40 ~shards ()) in
  Alcotest.(check int) "default is sequential" 1 (count 1);
  Alcotest.(check int) "explicit K" 2 (count 2);
  Alcotest.(check int) "0 = one shard per AS" 4 (count 0);
  let tiny = run_with ~n:6 ~shards:64 () in
  Alcotest.(check int) "K clamped to node count" 6 (Core.Runtime.shard_count tiny)

(* --- byte-identity across shard counts ---------------------------------- *)

let test_identity_ndlog () =
  let reference = fixpoint_lines (run_with ~n:40 ~shards:1 ()) in
  List.iter
    (fun k ->
      Alcotest.(check (list string))
        (Printf.sprintf "fixpoint identical at K=%d" k)
        reference
        (fixpoint_lines (run_with ~n:40 ~shards:k ())))
    [ 2; 4 ]

let test_identity_provenance () =
  (* SeNDLogProv: authenticated sends plus condensed provenance must
     survive the shard barriers byte-for-byte *)
  let snap k =
    let t = run_with ~cfg:Core.Config.sendlog_prov ~n:20 ~shards:k () in
    (fixpoint_lines t, prov_lines t)
  in
  let fp1, pv1 = snap 1 in
  List.iter
    (fun k ->
      let fpk, pvk = snap k in
      Alcotest.(check (list string))
        (Printf.sprintf "fixpoint identical at K=%d" k)
        fp1 fpk;
      Alcotest.(check (list string))
        (Printf.sprintf "canonical provenance identical at K=%d" k)
        pv1 pvk)
    [ 2; 4 ]

let test_identity_under_churn () =
  (* link flaps drive the DRed deletion pass; the flap schedule is
     seeded per link, so sharded and sequential runs see the same
     transitions and must re-converge to the same annotated fixpoint *)
  let snap k =
    let t = run_with ~cfg:Core.Config.sendlog_prov ~n:20 ~shards:k () in
    ignore (Core.Runtime.schedule_flaps t ~rate:0.4 ~horizon:3.0 ());
    ignore (Core.Runtime.run t);
    (fixpoint_lines t, prov_lines t)
  in
  let fp1, pv1 = snap 1 in
  let fp2, pv2 = snap 2 in
  Alcotest.(check (list string)) "post-churn fixpoint identical" fp1 fp2;
  Alcotest.(check (list string)) "post-churn provenance identical" pv1 pv2

let test_identity_under_faults_and_crash () =
  (* 20% loss, duplication and a mid-run crash-and-restart: verdicts
     hash message identity (not enqueue order), so the same content is
     dropped in both runs and reliable delivery converges to the same
     fixpoint regardless of K *)
  let crash = { Net.Fault.cr_node = "n2"; cr_at = 0.05; cr_restart = Some 0.15 } in
  let cfg =
    let c = Core.Config.with_loss Core.Config.ndlog 0.2 in
    let c = Core.Config.with_dup c 0.05 in
    let c = Core.Config.with_fault_seed c 99 in
    let c = Core.Config.with_crash c crash in
    Core.Config.with_reliable c true
  in
  let snap k =
    let t = run_with ~cfg ~n:20 ~shards:k () in
    (fixpoint_lines t, (Core.Runtime.stats t).Net.Stats.drops > 0)
  in
  let fp1, engaged1 = snap 1 in
  let fp2, engaged2 = snap 2 in
  Alcotest.(check bool) "faults engaged in both runs" true (engaged1 && engaged2);
  Alcotest.(check (list string)) "fixpoint identical under faults" fp1 fp2

(* --- zero lookahead ------------------------------------------------------ *)

let test_zero_lookahead () =
  (* a 0-latency cross-AS link collapses the safe-advance window to a
     single timestamp; the engine must degrade to lockstep rounds and
     still match the sequential fixpoint *)
  let nodes = [ "a"; "b"; "c"; "d" ] in
  let as_of = Hashtbl.create 4 in
  List.iter (fun (n, a) -> Hashtbl.replace as_of n a)
    [ ("a", 0); ("b", 0); ("c", 1); ("d", 1) ];
  let link l_src l_dst l_latency = { Net.Topology.l_src; l_dst; l_cost = 1; l_latency } in
  let links =
    [ link "a" "b" 0.01; link "b" "a" 0.01;
      link "c" "d" 0.01; link "d" "c" 0.01;
      link "b" "c" 0.0; link "c" "b" 0.0 ]
  in
  let topo = Net.Topology.validated ~nodes ~links ~as_of in
  let run shards =
    let cfg =
      Core.Config.with_shards { Core.Config.ndlog with Core.Config.rsa_bits } shards
    in
    let t =
      Core.Runtime.create
        ~rng:(Crypto.Rng.create ~seed:11)
        ~cfg ~topo
        ~program:(Ndlog.Programs.best_path ())
        ()
    in
    Core.Runtime.install_links t;
    ignore (Core.Runtime.run t);
    t
  in
  let sharded = run 2 in
  Alcotest.(check int) "two shards in play" 2 (Core.Runtime.shard_count sharded);
  Alcotest.(check (list string))
    "zero-lookahead fixpoint identical"
    (fixpoint_lines (run 1))
    (fixpoint_lines sharded)

(* --- windowed drain ------------------------------------------------------ *)

let test_run_window () =
  let sim = Net.Event_sim.create () in
  let fired = ref [] in
  List.iter
    (fun d -> Net.Event_sim.schedule sim ~delay:d (fun () -> fired := d :: !fired))
    [ 1.0; 2.0; 3.0 ];
  let n1 = Net.Event_sim.run_window ~limit:2.0 sim in
  Alcotest.(check int) "exclusive window stops before the limit" 1 n1;
  Alcotest.(check (list (float 1e-9))) "only t=1 fired" [ 1.0 ] !fired;
  let n2 = Net.Event_sim.run_window ~inclusive:true ~limit:2.0 sim in
  Alcotest.(check int) "inclusive window takes the boundary event" 1 n2;
  Alcotest.(check (float 1e-9)) "clock at last executed event" 2.0
    (Net.Event_sim.now sim);
  (* events scheduled inside the window by window events also run *)
  Net.Event_sim.schedule_at sim ~time:2.5 (fun () ->
      Net.Event_sim.schedule_at sim ~time:2.6 (fun () -> fired := 2.6 :: !fired));
  let n3 = Net.Event_sim.run_window ~limit:2.75 sim in
  Alcotest.(check int) "cascade inside the window drains" 2 n3;
  Alcotest.(check int) "t=3 still queued" 1 (Net.Event_sim.pending sim)

(* --- AS-level provenance granularity ------------------------------------- *)

let test_domain_summary () =
  let open Provenance in
  Alcotest.(check bool) "zero summarizes to zero" true
    (Prov_expr.equal (Condense.domain_summary Prov_expr.zero ~domain:"as3") Prov_expr.zero);
  let e = Prov_expr.(plus (base "n1") (times (base "n2") (base "n3"))) in
  Alcotest.(check bool) "non-zero collapses to the domain base" true
    (Prov_expr.equal (Condense.domain_summary e ~domain:"as3") (Prov_expr.base "as3"))

let test_as_granularity_end_to_end () =
  (* same fixpoint as node-level, but cross-AS shipments carry only
     the origin domain, so domain bases appear in the annotations and
     a traceback stops at the AS boundary *)
  let cfg =
    Core.Config.with_granularity Core.Config.sendlog_prov Core.Config.As_level
  in
  let t = run_with ~cfg ~n:20 ~shards:1 () in
  let node_level = run_with ~cfg:Core.Config.sendlog_prov ~n:20 ~shards:1 () in
  Alcotest.(check (list string))
    "granularity does not change the fixpoint"
    (fixpoint_lines node_level) (fixpoint_lines t);
  let is_domain b = String.length b >= 2 && String.sub b 0 2 = "as" in
  (* the stored annotations of cross-AS derived tuples name domains *)
  let any_domain_base =
    List.exists
      (fun (addr, tu) ->
        List.exists is_domain
          (Provenance.Prov_expr.bases (Core.Runtime.provenance_of t ~at:addr tu)))
      (Core.Runtime.query_all t "bestPath")
  in
  Alcotest.(check bool) "some provenance names an origin domain" true any_domain_base;
  (* traceback from a node: chains that leave the querying node's AS
     terminate in a leaf said by the foreign domain *)
  let topo = Core.Runtime.topology t in
  let cross =
    List.find_opt
      (fun (addr, tu) ->
        Net.Topology.as_of topo addr = 0
        && List.exists is_domain
             (let r = Core.Traceback.query t ~at:addr tu in
              Provenance.Prov_expr.bases r.Core.Traceback.expr))
      (Core.Runtime.query_all t "bestPath")
  in
  Alcotest.(check bool) "a traceback hit a domain boundary" true (cross <> None)

let suite =
  [ Alcotest.test_case "shard count follows config" `Quick test_shard_count_follows_config;
    Alcotest.test_case "byte-identity: NDLog K=2,4" `Quick test_identity_ndlog;
    Alcotest.test_case "byte-identity: provenance K=2,4" `Quick test_identity_provenance;
    Alcotest.test_case "byte-identity under churn" `Quick test_identity_under_churn;
    Alcotest.test_case "byte-identity under faults and crash" `Quick
      test_identity_under_faults_and_crash;
    Alcotest.test_case "zero lookahead degenerates safely" `Quick test_zero_lookahead;
    Alcotest.test_case "run_window drains a time window" `Quick test_run_window;
    Alcotest.test_case "domain summary collapses expressions" `Quick test_domain_summary;
    Alcotest.test_case "AS granularity end to end" `Quick
      test_as_granularity_end_to_end ]
