(* Tests for the persisted provenance log (lib/store) and the offline
   query path over it: crash-safe recovery (torn tail, crash injected
   mid-compaction), run -> restart -> offline traceback byte-identity
   against live traceback, the 1/K flow-sampling bound, and the
   persisted Bloom-digest prefilter's false-positive rate. *)

open Engine

let rsa_bits = 384

(* fresh scratch directory per test, removed afterwards *)
let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psn-store-%d-%d" (Unix.getpid ()) (Hashtbl.hash f land 0xffffff))
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then (
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path)
      else Sys.remove path
  in
  rm dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let mk_record i =
  let tuple = Tuple.make "p" [ Value.V_int i ] in
  let ident = Tuple.identity tuple in
  {
    Store.Prov_log.r_node = Printf.sprintf "n%d" (i mod 3);
    r_domain = Printf.sprintf "as%d" (i mod 2);
    r_live = false;
    r_at = float_of_int i;
    r_tuple = tuple;
    r_expr = Provenance.Prov_expr.base ident;
    r_received_from = [];
    r_derivs = [];
  }

let fill log n =
  for i = 0 to n - 1 do
    Store.Prov_log.append log (mk_record i)
  done;
  Store.Prov_log.flush log

(* --- persistence and recovery ------------------------------------- *)

let test_reopen_roundtrip () =
  with_temp_dir (fun dir ->
      let log = Store.Prov_log.open_log ~dir () in
      fill log 50;
      Store.Prov_log.append_flow log ~src:"n0" ~dst:"n1" ~time:1.0
        ~ident:"p(7)";
      Store.Prov_log.close log;
      let log = Store.Prov_log.open_log ~dir () in
      Alcotest.(check int) "records survive reopen" 50
        (Store.Prov_log.record_count log);
      Alcotest.(check int) "flows survive reopen" 1
        (Store.Prov_log.flow_count log);
      let rs = Store.Prov_log.lookup log ~ident:"p(7)" in
      Alcotest.(check int) "lookup finds the record" 1 (List.length rs);
      let r = List.hd rs in
      Alcotest.(check string) "expr survives reopen"
        (Provenance.Prov_expr.canonical_string (mk_record 7).r_expr)
        (Provenance.Prov_expr.canonical_string r.Store.Prov_log.r_expr);
      Store.Prov_log.close log)

let test_torn_tail_truncated () =
  with_temp_dir (fun dir ->
      let log = Store.Prov_log.open_log ~dir () in
      fill log 20;
      Store.Prov_log.close log;
      (* simulate a crash mid-write: garbage (an impossible frame)
         appended to the tail segment *)
      let segs =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".log")
        |> List.sort compare
      in
      let tail = Filename.concat dir (List.nth segs (List.length segs - 1)) in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 tail in
      output_string oc "\xff\xff\xff\xffGARBAGE-NOT-A-FRAME";
      close_out oc;
      let log = Store.Prov_log.open_log ~dir () in
      Alcotest.(check int) "torn tail truncated, records intact" 20
        (Store.Prov_log.record_count log);
      Alcotest.(check int) "torn record still readable" 1
        (List.length (Store.Prov_log.lookup log ~ident:"p(19)"));
      (* the log must accept appends after truncation *)
      Store.Prov_log.append log (mk_record 20);
      Store.Prov_log.flush log;
      Store.Prov_log.close log;
      let log = Store.Prov_log.open_log ~dir () in
      Alcotest.(check int) "append after recovery persists" 21
        (Store.Prov_log.record_count log);
      Store.Prov_log.close log)

let crash_compaction_case hook () =
  with_temp_dir (fun dir ->
      (* tiny segments so 60 records span many sealed segments *)
      let log =
        Store.Prov_log.open_log ~segment_bytes:1024 ~compact_threshold:1000
          ~dir ()
      in
      fill log 60;
      let sealed = Store.Prov_log.segment_count log in
      Alcotest.(check bool) "enough segments to compact" true (sealed >= 3);
      (try
         ignore (Store.Prov_log.compact ~crash_after:hook log);
         Alcotest.fail "crash hook did not fire"
       with Store.Prov_log.Crash_injected _ -> ());
      (* recovery: whatever state the crash left (orphan tmp, old or
         new manifest), every record must still be readable *)
      let log = Store.Prov_log.open_log ~segment_bytes:1024 ~dir () in
      Alcotest.(check int) "no records lost by crashed compaction" 60
        (Store.Prov_log.record_count log);
      for i = 0 to 59 do
        let ident = Tuple.identity (Tuple.make "p" [ Value.V_int i ]) in
        Alcotest.(check int)
          (Printf.sprintf "record %d readable" i)
          1
          (List.length (Store.Prov_log.lookup log ~ident))
      done;
      (* no leftover tmp files after recovery *)
      Array.iter
        (fun f ->
          Alcotest.(check bool)
            (Printf.sprintf "no orphan tmp %s" f)
            false
            (Filename.check_suffix f ".tmp"))
        (Sys.readdir dir);
      (* a clean compaction must now succeed *)
      if Store.Prov_log.segment_count log >= 3 then
        ignore (Store.Prov_log.compact log);
      Alcotest.(check int) "records survive the real compaction" 60
        (Store.Prov_log.record_count log);
      Store.Prov_log.close log)

(* --- run -> restart -> offline traceback --------------------------- *)

let mk_prov_runtime ~dir ?(sample = 1) () =
  let topo = Net.Topology.random (Crypto.Rng.create ~seed:7) ~n:8 () in
  let cfg = { Core.Config.sendlog_prov with rsa_bits } in
  let cfg = Core.Config.with_prov_log cfg (Some dir) in
  let cfg = Core.Config.with_prov_sample cfg sample in
  let t =
    Core.Runtime.create ~rng:(Crypto.Rng.create ~seed:8) ~cfg ~topo
      ~program:(Ndlog.Programs.best_path ()) ()
  in
  Core.Runtime.install_links t;
  ignore (Core.Runtime.run t);
  t

let test_offline_byte_identity () =
  with_temp_dir (fun dir ->
      let t = mk_prov_runtime ~dir () in
      Core.Runtime.sync_prov_log t;
      let live =
        List.map
          (fun (addr, tuple) ->
            let r = Core.Traceback.query t ~at:addr tuple in
            (addr, Tuple.identity tuple,
             Provenance.Prov_expr.canonical_string r.Core.Traceback.expr))
          (Core.Runtime.query_all t "bestPath")
      in
      Alcotest.(check bool) "live tuples to compare" true
        (List.length live > 10);
      let check_against log =
        List.iter
          (fun (addr, ident, want) ->
            let r =
              Core.Traceback.offline_query log ~at:addr ~ident ()
            in
            Alcotest.(check bool)
              (Printf.sprintf "offline %s at %s complete" ident addr)
              false r.Core.Traceback.partial;
            Alcotest.(check string)
              (Printf.sprintf "offline %s at %s" ident addr)
              want
              (Provenance.Prov_expr.canonical_string r.Core.Traceback.expr))
          live
      in
      (match Core.Runtime.prov_log t with
      | None -> Alcotest.fail "runtime has no prov log"
      | Some log -> check_against log);
      (* restart: shut the runtime down, reopen the log from disk in a
         fresh handle, and the offline answers must not change *)
      Core.Runtime.shutdown t;
      let log = Store.Prov_log.open_log ~dir () in
      check_against log;
      Alcotest.(check bool) "restart sees flows" true
        (Store.Prov_log.flow_count log > 0);
      Alcotest.(check bool) "restart sees digests" true
        (Store.Prov_log.digest_count log > 0);
      Store.Prov_log.close log)

let test_provenance_query_backends () =
  with_temp_dir (fun dir ->
      let t = mk_prov_runtime ~dir () in
      Core.Runtime.sync_prov_log t;
      Core.Runtime.shutdown t;
      let log = Store.Prov_log.open_log ~dir () in
      Fun.protect
        ~finally:(fun () -> Store.Prov_log.close log)
        (fun () ->
          (* Disk backend, relation target: a tree per (node, ident) *)
          let q =
            {
              Core.Provenance_query.q_target =
                Core.Provenance_query.Relation "bestPath";
              q_before = None;
              q_granularity = None;
              q_backend = Core.Provenance_query.Disk log;
            }
          in
          (match Core.Provenance_query.run q with
          | Core.Provenance_query.Trees fs ->
            Alcotest.(check bool) "disk relation query finds trees" true
              (List.length fs > 10)
          | Core.Provenance_query.Suspects _ ->
            Alcotest.fail "disk backend returned suspects");
          (* Sampled backend: moonwalk suspects over the recorded flows *)
          let ident =
            match Store.Prov_log.flows log with
            | [] -> Alcotest.fail "no flows recorded"
            | f :: _ -> f.Store.Prov_log.fl_ident
          in
          let q =
            {
              Core.Provenance_query.q_target =
                Core.Provenance_query.Tuple_id ident;
              q_before = None;
              q_granularity = None;
              q_backend = Core.Provenance_query.Sampled log;
            }
          in
          match
            Core.Provenance_query.run
              ~rng:(Crypto.Rng.create ~seed:11) ~walks:100 q
          with
          | Core.Provenance_query.Suspects { suspects; _ } ->
            Alcotest.(check bool) "moonwalk names suspects" true
              (suspects <> []);
            let hits = List.fold_left (fun a (_, h) -> a + h) 0 suspects in
            Alcotest.(check bool) "hit count bounded by walks" true
              (hits > 0 && hits <= 100)
          | Core.Provenance_query.Trees _ ->
            Alcotest.fail "sampled backend returned trees"))

(* --- 1/K sampling -------------------------------------------------- *)

let test_sampling_rate_bound () =
  let keys =
    List.init 4000 (fun i -> Printf.sprintf "path(n%d,n%d,%d)" (i mod 97) i i)
  in
  let count k =
    List.length (List.filter (fun key -> Store.Prov_log.sampled ~k key) keys)
  in
  (* K = 1 keeps everything *)
  Alcotest.(check int) "K=1 keeps all" 4000 (count 1);
  (* deterministic: same key, same verdict *)
  List.iter
    (fun key ->
      Alcotest.(check bool) "sampling is deterministic" true
        (Store.Prov_log.sampled ~k:8 key = Store.Prov_log.sampled ~k:8 key))
    keys;
  (* hash mod 64 = 0 implies mod 8 = 0: rates are nested *)
  let c8 = count 8 and c64 = count 64 in
  Alcotest.(check bool) "K=64 subset of K=8" true (c64 <= c8);
  List.iter
    (fun key ->
      if Store.Prov_log.sampled ~k:64 key then
        Alcotest.(check bool) "K=64 sample also in K=8 sample" true
          (Store.Prov_log.sampled ~k:8 key))
    keys;
  (* the rate tracks 1/K within a generous statistical band *)
  let in_band k c =
    let expected = 4000.0 /. float_of_int k in
    let lo = expected *. 0.4 and hi = expected *. 2.5 in
    let c = float_of_int c in
    c >= lo && c <= hi
  in
  Alcotest.(check bool) "K=8 rate near 1/8" true (in_band 8 c8);
  Alcotest.(check bool) "K=64 rate near 1/64" true (in_band 64 c64)

let test_sampled_runtime_flow_counts () =
  (* higher K must record no more flows than lower K on the same run *)
  let flows_at k =
    with_temp_dir (fun dir ->
        let t = mk_prov_runtime ~dir ~sample:k () in
        Core.Runtime.sync_prov_log t;
        let n =
          match Core.Runtime.prov_log t with
          | Some log -> Store.Prov_log.flow_count log
          | None -> Alcotest.fail "runtime has no prov log"
        in
        Core.Runtime.shutdown t;
        n)
  in
  let f1 = flows_at 1 and f8 = flows_at 8 and f64 = flows_at 64 in
  Alcotest.(check bool) "K=1 records flows" true (f1 > 0);
  Alcotest.(check bool) "flow volume shrinks with K" true
    (f64 <= f8 && f8 <= f1);
  Alcotest.(check bool) "K=8 thins the flow log" true (f8 < f1)

(* --- persisted Bloom digests --------------------------------------- *)

let test_digest_fp_rate () =
  with_temp_dir (fun dir ->
      (* same fixture parameters as test_bloom's FP-rate bound *)
      let log =
        Store.Prov_log.open_log ~digest_expected:1000 ~digest_fp_rate:0.01
          ~dir ()
      in
      for i = 0 to 999 do
        Store.Prov_log.record_digest log ~node:"n0" ~time:1.0
          (Printf.sprintf "member-%d" i)
      done;
      Store.Prov_log.flush log;
      Store.Prov_log.close log;
      (* probe a fresh handle so the digests exercised are the ones
         recovered from disk *)
      let log = Store.Prov_log.open_log ~dir () in
      for i = 0 to 999 do
        Alcotest.(check bool)
          (Printf.sprintf "member %d found after reopen" i)
          true
          (Store.Prov_log.digest_mem log ~node:"n0" ~time:1.0
             (Printf.sprintf "member-%d" i))
      done;
      let probes = 20000 in
      let fps = ref 0 in
      for i = 0 to probes - 1 do
        if
          Store.Prov_log.digest_mem log ~node:"n0" ~time:1.0
            (Printf.sprintf "absent-%d" i)
        then incr fps
      done;
      let rate = float_of_int !fps /. float_of_int probes in
      Alcotest.(check bool)
        (Printf.sprintf "persisted digest FP rate %.4f < 0.03" rate)
        true (rate < 0.03);
      Store.Prov_log.close log)

let suite =
  [
    Alcotest.test_case "reopen roundtrip" `Quick test_reopen_roundtrip;
    Alcotest.test_case "torn tail truncated on recovery" `Quick
      test_torn_tail_truncated;
    Alcotest.test_case "crash after compaction tmp write" `Quick
      (crash_compaction_case `Tmp_written);
    Alcotest.test_case "crash after compaction manifest swap" `Quick
      (crash_compaction_case `Manifest_swapped);
    Alcotest.test_case "offline traceback byte-identity across restart"
      `Slow test_offline_byte_identity;
    Alcotest.test_case "provenance query disk and sampled backends" `Slow
      test_provenance_query_backends;
    Alcotest.test_case "1/K sampling rate bound" `Quick
      test_sampling_rate_bound;
    Alcotest.test_case "sampled runtime flow counts" `Slow
      test_sampled_runtime_flow_counts;
    Alcotest.test_case "persisted bloom digest FP rate" `Quick
      test_digest_fp_rate;
  ]
