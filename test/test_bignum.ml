(* Tests for the arbitrary-precision arithmetic substrate. *)

open Bignum

let nat = Alcotest.testable Nat.pp Nat.equal

let check_nat = Alcotest.check nat

(* --- unit tests ------------------------------------------------------ *)

let test_of_int_roundtrip () =
  List.iter
    (fun i -> Alcotest.(check (option int)) "roundtrip" (Some i) (Nat.to_int_opt (Nat.of_int i)))
    [ 0; 1; 2; 25; 26; 63; 64; 65; 12345678; max_int ]

let test_add_basic () =
  check_nat "1+1" Nat.two (Nat.add Nat.one Nat.one);
  check_nat "0+x" (Nat.of_int 42) (Nat.add Nat.zero (Nat.of_int 42));
  (* carries across limbs *)
  let big = Nat.of_string "67108863" (* 2^26 - 1 *) in
  check_nat "carry" (Nat.of_string "67108864") (Nat.add big Nat.one)

let test_sub_basic () =
  check_nat "x-x" Nat.zero (Nat.sub (Nat.of_int 99) (Nat.of_int 99));
  check_nat "borrow" (Nat.of_string "67108863") (Nat.sub (Nat.of_string "67108864") Nat.one);
  Alcotest.check_raises "negative" (Invalid_argument "Nat.sub: would be negative")
    (fun () -> ignore (Nat.sub Nat.one Nat.two))

let test_mul_known () =
  check_nat "known product"
    (Nat.of_string "121932631137021795226185032733622923332237463801111263526900")
    (Nat.mul
       (Nat.of_string "123456789012345678901234567890")
       (Nat.of_string "987654321098765432109876543210"))

let test_divmod_known () =
  let q, r = Nat.divmod (Nat.of_string "1000000000000000000000") (Nat.of_string "7777777") in
  check_nat "q" (Nat.of_string "128571441428572") q;
  check_nat "r" (Nat.of_string "5555556") r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod Nat.one Nat.zero))

let test_divmod_edge_cases () =
  (* dividend smaller than divisor *)
  let q, r = Nat.divmod (Nat.of_int 5) (Nat.of_int 7) in
  check_nat "q=0" Nat.zero q;
  check_nat "r=dividend" (Nat.of_int 5) r;
  (* exact division *)
  let a = Nat.of_string "123456789123456789123456789" in
  let q, r = Nat.divmod (Nat.mul a (Nat.of_int 997)) a in
  check_nat "exact q" (Nat.of_int 997) q;
  check_nat "exact r" Nat.zero r;
  (* the Knuth D add-back case needs top-limb patterns; stress a few *)
  let u = Nat.of_hex "7fffffffffffffffffffffffffffffff" in
  let v = Nat.of_hex "80000000000000000000000001" in
  let q, r = Nat.divmod u v in
  check_nat "reconstruct" u (Nat.add (Nat.mul q v) r);
  Alcotest.(check bool) "r < v" true (Nat.compare r v < 0)

let test_mod_pow () =
  (* Fermat: a^(p-1) = 1 mod p for prime p not dividing a *)
  let p = Nat.of_int 1000000007 in
  let a = Nat.of_int 123456 in
  check_nat "fermat" Nat.one (Nat.mod_pow a (Nat.sub p Nat.one) p);
  check_nat "mod 1" Nat.zero (Nat.mod_pow a (Nat.of_int 5) Nat.one);
  check_nat "e=0" Nat.one (Nat.mod_pow a Nat.zero p)

let test_shift () =
  check_nat "shl" (Nat.of_int 1024) (Nat.shift_left Nat.one 10);
  check_nat "shr" Nat.one (Nat.shift_right (Nat.of_int 1024) 10);
  check_nat "shr to zero" Nat.zero (Nat.shift_right (Nat.of_int 5) 10);
  (* cross-limb shifts *)
  let x = Nat.of_string "987654321987654321" in
  check_nat "shl/shr inverse" x (Nat.shift_right (Nat.shift_left x 53) 53)

let test_bits_testbit () =
  Alcotest.(check int) "bits 0" 0 (Nat.bits Nat.zero);
  Alcotest.(check int) "bits 1" 1 (Nat.bits Nat.one);
  Alcotest.(check int) "bits 255" 8 (Nat.bits (Nat.of_int 255));
  Alcotest.(check int) "bits 256" 9 (Nat.bits (Nat.of_int 256));
  Alcotest.(check bool) "testbit" true (Nat.testbit (Nat.of_int 5) 2);
  Alcotest.(check bool) "testbit clear" false (Nat.testbit (Nat.of_int 5) 1)

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Nat.to_string (Nat.of_string s)))
    [ "0"; "1"; "67108864"; "123456789012345678901234567890123456789" ]

let test_hex_roundtrip () =
  List.iter
    (fun h -> Alcotest.(check string) h h (Nat.to_hex (Nat.of_hex h)))
    [ "1"; "ff"; "deadbeef"; "123456789abcdef0123456789abcdef" ];
  check_nat "hex value" (Nat.of_int 255) (Nat.of_hex "FF")

let test_bytes_roundtrip () =
  let x = Nat.of_string "340282366920938463463374607431768211455" in
  check_nat "bytes" x (Nat.of_bytes_be (Nat.to_bytes_be x));
  Alcotest.(check string) "zero byte" "\000" (Nat.to_bytes_be Nat.zero)

let test_gcd () =
  check_nat "gcd" (Nat.of_int 6) (Nat.gcd (Nat.of_int 54) (Nat.of_int 24));
  check_nat "gcd with zero" (Nat.of_int 7) (Nat.gcd (Nat.of_int 7) Nat.zero);
  check_nat "gcd coprime" Nat.one (Nat.gcd (Nat.of_int 17) (Nat.of_int 256))

let test_pow () =
  check_nat "2^10" (Nat.of_int 1024) (Nat.pow Nat.two 10);
  check_nat "x^0" Nat.one (Nat.pow (Nat.of_int 99) 0);
  check_nat "10^30" (Nat.of_string ("1" ^ String.make 30 '0')) (Nat.pow (Nat.of_int 10) 30)

(* --- Montgomery fast path ---------------------------------------------- *)

let test_mont_rejects_bad_modulus () =
  List.iter
    (fun m ->
      Alcotest.check_raises "odd modulus required"
        (Invalid_argument "Nat.Mont.ctx: modulus must be odd and > 1")
        (fun () -> ignore (Nat.Mont.ctx m)))
    [ Nat.zero; Nat.one; Nat.two; Nat.of_int 4096 ]

let test_mont_known_values () =
  let p = Nat.of_int 1000000007 in
  let c = Nat.Mont.ctx p in
  check_nat "modulus" p (Nat.Mont.modulus c);
  check_nat "fermat" Nat.one
    (Nat.Mont.mod_pow c (Nat.of_int 123456) (Nat.sub p Nat.one));
  check_nat "e=0" Nat.one (Nat.Mont.mod_pow c (Nat.of_int 5) Nat.zero);
  check_nat "b=0" Nat.zero (Nat.Mont.mod_pow c Nat.zero (Nat.of_int 17));
  check_nat "b=1" Nat.one (Nat.Mont.mod_pow c Nat.one (Nat.of_int 99));
  check_nat "int exponent"
    (Nat.mod_pow (Nat.of_int 3) (Nat.of_int 65537) p)
    (Nat.Mont.mod_pow_int c (Nat.of_int 3) 65537);
  check_nat "fast = naive (even modulus fallback)"
    (Nat.mod_pow (Nat.of_int 7) (Nat.of_int 130) (Nat.of_int 4096))
    (Nat.mod_pow_fast (Nat.of_int 7) (Nat.of_int 130) (Nat.of_int 4096))

(* --- Bigint ----------------------------------------------------------- *)

let bigint = Alcotest.testable Bigint.pp Bigint.equal

let test_bigint_signs () =
  let m3 = Bigint.of_int (-3) and p5 = Bigint.of_int 5 in
  Alcotest.check bigint "add" (Bigint.of_int 2) (Bigint.add m3 p5);
  Alcotest.check bigint "sub" (Bigint.of_int (-8)) (Bigint.sub m3 p5);
  Alcotest.check bigint "mul" (Bigint.of_int (-15)) (Bigint.mul m3 p5);
  Alcotest.check bigint "neg zero" Bigint.zero (Bigint.neg Bigint.zero);
  Alcotest.(check int) "sign" (-1) (Bigint.sign_int m3);
  Alcotest.(check int) "sign zero" 0 (Bigint.sign_int Bigint.zero)

let test_bigint_divmod_truncated () =
  (* matches OCaml's (/) and (mod) semantics *)
  List.iter
    (fun (a, b) ->
      let q, r = Bigint.divmod (Bigint.of_int a) (Bigint.of_int b) in
      Alcotest.check bigint (Printf.sprintf "%d/%d q" a b) (Bigint.of_int (a / b)) q;
      Alcotest.check bigint (Printf.sprintf "%d mod %d" a b) (Bigint.of_int (a mod b)) r)
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (0, 5); (12, 4) ]

let test_bigint_egcd () =
  let check_pair a b =
    let g, x, y = Bigint.egcd (Bigint.of_int a) (Bigint.of_int b) in
    let lhs =
      Bigint.add (Bigint.mul (Bigint.of_int a) x) (Bigint.mul (Bigint.of_int b) y)
    in
    Alcotest.check bigint "bezout" g lhs
  in
  List.iter (fun (a, b) -> check_pair a b) [ (240, 46); (17, 0); (0, 5); (-35, 15) ]

let test_bigint_mod_inverse () =
  (match Bigint.mod_inverse (Bigint.of_int 3) (Bigint.of_int 7) with
  | Some i -> Alcotest.check bigint "3^-1 mod 7" (Bigint.of_int 5) i
  | None -> Alcotest.fail "expected inverse");
  Alcotest.(check bool) "no inverse" true
    (Bigint.mod_inverse (Bigint.of_int 4) (Bigint.of_int 8) = None)

(* --- property tests ---------------------------------------------------- *)

let prop_add_commutative =
  QCheck.Test.make ~name:"nat add commutative" ~count:200
    QCheck.(pair (int_bound 100_000_000) (int_bound 100_000_000))
    (fun (a, b) -> Nat.equal (Nat.add (Nat.of_int a) (Nat.of_int b)) (Nat.add (Nat.of_int b) (Nat.of_int a)))

let prop_int_semantics =
  (* operations agree with machine ints on small values *)
  QCheck.Test.make ~name:"nat agrees with int" ~count:500
    QCheck.(pair (int_bound 1_000_000) (int_range 1 1_000_000))
    (fun (a, b) ->
      let na = Nat.of_int a and nb = Nat.of_int b in
      Nat.to_int_opt (Nat.add na nb) = Some (a + b)
      && Nat.to_int_opt (Nat.mul na nb) = Some (a * b)
      && (let q, r = Nat.divmod na nb in
          Nat.to_int_opt q = Some (a / b) && Nat.to_int_opt r = Some (a mod b)))

let big_nat_gen =
  (* naturals of up to ~300 bits from decimal digit strings *)
  QCheck.make
    ~print:Nat.to_string
    QCheck.Gen.(
      map
        (fun digits ->
          let s = String.concat "" (List.map string_of_int digits) in
          Nat.of_string (if s = "" then "0" else s))
        (list_size (int_range 1 90) (int_bound 9)))

let prop_divmod_reconstructs =
  QCheck.Test.make ~name:"divmod reconstructs" ~count:300
    QCheck.(pair big_nat_gen big_nat_gen)
    (fun (u, v) ->
      QCheck.assume (not (Nat.is_zero v));
      let q, r = Nat.divmod u v in
      Nat.equal u (Nat.add (Nat.mul q v) r) && Nat.compare r v < 0)

let prop_mul_distributes =
  QCheck.Test.make ~name:"mul distributes over add" ~count:200
    QCheck.(triple big_nat_gen big_nat_gen big_nat_gen)
    (fun (a, b, c) ->
      Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"decimal roundtrip" ~count:200 big_nat_gen (fun a ->
      Nat.equal a (Nat.of_string (Nat.to_string a)))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 big_nat_gen (fun a ->
      Nat.equal a (Nat.of_hex (Nat.to_hex a)))

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes roundtrip" ~count:200 big_nat_gen (fun a ->
      Nat.equal a (Nat.of_bytes_be (Nat.to_bytes_be a)))

let prop_shift_consistent =
  QCheck.Test.make ~name:"shift = mul/div by 2^k" ~count:200
    QCheck.(pair big_nat_gen (int_bound 100))
    (fun (a, k) ->
      let p2 = Nat.pow Nat.two k in
      Nat.equal (Nat.shift_left a k) (Nat.mul a p2)
      && Nat.equal (Nat.shift_right a k) (Nat.div a p2))

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both" ~count:200
    QCheck.(pair big_nat_gen big_nat_gen)
    (fun (a, b) ->
      QCheck.assume (not (Nat.is_zero a) || not (Nat.is_zero b));
      let g = Nat.gcd a b in
      (not (Nat.is_zero g))
      && Nat.is_zero (Nat.rem a g)
      && Nat.is_zero (Nat.rem b g))

let prop_mod_pow_mul =
  (* a^(x+y) = a^x * a^y (mod m) *)
  QCheck.Test.make ~name:"mod_pow homomorphism" ~count:100
    QCheck.(triple (int_range 2 10000) (pair (int_bound 200) (int_bound 200)) (int_range 2 100000))
    (fun (a, (x, y), m) ->
      let a = Nat.of_int a and m = Nat.of_int m in
      let lhs = Nat.mod_pow a (Nat.of_int (x + y)) m in
      let rhs = Nat.rem (Nat.mul (Nat.mod_pow a (Nat.of_int x) m) (Nat.mod_pow a (Nat.of_int y) m)) m in
      Nat.equal lhs rhs)

let odd_modulus_gen =
  (* odd moduli >= 3 of up to ~300 bits, the Montgomery domain *)
  QCheck.map ~rev:Fun.id
    (fun n ->
      let n = if Nat.is_even n then Nat.add n Nat.one else n in
      if Nat.compare n (Nat.of_int 3) < 0 then Nat.of_int 3 else n)
    big_nat_gen

let prop_mont_matches_naive =
  QCheck.Test.make ~name:"Montgomery mod_pow = naive mod_pow" ~count:150
    QCheck.(triple big_nat_gen big_nat_gen odd_modulus_gen)
    (fun (b, e, m) ->
      Nat.equal (Nat.Mont.mod_pow (Nat.Mont.ctx m) b e) (Nat.mod_pow b e m))

let prop_mod_pow_fast_matches_naive =
  QCheck.Test.make ~name:"mod_pow_fast = mod_pow (any modulus)" ~count:150
    QCheck.(triple big_nat_gen big_nat_gen big_nat_gen)
    (fun (b, e, m) ->
      QCheck.assume (not (Nat.is_zero m));
      Nat.equal (Nat.mod_pow_fast b e m) (Nat.mod_pow b e m))

let prop_mont_int_exponent =
  QCheck.Test.make ~name:"Montgomery int exponent = Nat exponent" ~count:150
    QCheck.(triple big_nat_gen (int_bound 200_000) odd_modulus_gen)
    (fun (b, e, m) ->
      Nat.equal
        (Nat.Mont.mod_pow_int (Nat.Mont.ctx m) b e)
        (Nat.mod_pow b (Nat.of_int e) m))

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:200
    QCheck.(pair big_nat_gen big_nat_gen)
    (fun (a, b) -> Nat.compare a b = -Nat.compare b a)

let suite : unit Alcotest.test_case list =
  [ Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
    Alcotest.test_case "add basics" `Quick test_add_basic;
    Alcotest.test_case "sub basics" `Quick test_sub_basic;
    Alcotest.test_case "mul known value" `Quick test_mul_known;
    Alcotest.test_case "divmod known value" `Quick test_divmod_known;
    Alcotest.test_case "divmod edge cases" `Quick test_divmod_edge_cases;
    Alcotest.test_case "mod_pow" `Quick test_mod_pow;
    Alcotest.test_case "shifts" `Quick test_shift;
    Alcotest.test_case "bits/testbit" `Quick test_bits_testbit;
    Alcotest.test_case "decimal strings" `Quick test_string_roundtrip;
    Alcotest.test_case "hex strings" `Quick test_hex_roundtrip;
    Alcotest.test_case "byte strings" `Quick test_bytes_roundtrip;
    Alcotest.test_case "gcd" `Quick test_gcd;
    Alcotest.test_case "pow" `Quick test_pow;
    Alcotest.test_case "montgomery rejects bad moduli" `Quick test_mont_rejects_bad_modulus;
    Alcotest.test_case "montgomery known values" `Quick test_mont_known_values;
    Alcotest.test_case "bigint signs" `Quick test_bigint_signs;
    Alcotest.test_case "bigint truncated divmod" `Quick test_bigint_divmod_truncated;
    Alcotest.test_case "bigint egcd" `Quick test_bigint_egcd;
    Alcotest.test_case "bigint mod_inverse" `Quick test_bigint_mod_inverse ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_add_commutative;
        prop_int_semantics;
        prop_divmod_reconstructs;
        prop_mul_distributes;
        prop_string_roundtrip;
        prop_hex_roundtrip;
        prop_bytes_roundtrip;
        prop_shift_consistent;
        prop_gcd_divides;
        prop_mod_pow_mul;
        prop_mont_matches_naive;
        prop_mod_pow_fast_matches_naive;
        prop_mont_int_exponent;
        prop_compare_total_order ]
